"""Pattern-matching planner.

Turns the MATCH patterns of a query into an ordered list of steps:

* ``ScanStep`` - produce candidate bindings for one variable from a
  property-index lookup, a label scan, or (last resort) an all-vertices
  scan; the access path is chosen at plan time and recorded on the step;
* ``ExpandStep`` - extend bindings along one relationship pattern via
  adjacency, checking the far node's labels/property filters inline;
* ``JoinCheckStep`` - verify a relationship between two already-bound
  variables (cycles in the pattern graph) with an O(1) endpoint-pair
  probe.

Start-point choice is selectivity-driven: an exact property filter with
an index beats a label scan, and smaller labels beat bigger ones - the
same heuristics production engines apply.  Disconnected pattern
components each get their own scan (cartesian product).

The planner also owns two jobs the executor used to do per row:

* **Slot allocation** - every variable the plan binds gets a fixed slot
  index, assigned in the order steps bind them, so the executor can
  represent a binding as a flat tuple it extends by appending instead
  of copying a dict per step.  A consequence: reusing one relationship
  variable across two patterns is rejected with a
  :class:`~repro.exceptions.QueryError` (the previous engine silently
  bound it to whichever pattern matched last, which is not Cypher's
  same-relationship semantics either).
* **Predicate pushdown** - WHERE is decomposed into AND-conjuncts;
  single-variable equality conjuncts (``x.p = literal``) are folded
  into the variable's :class:`NodeSpec` props (where they can hit a
  property index and drive scan selection), and every remaining
  conjunct is attached to the earliest step that binds all of its
  variables, so non-matching bindings die as soon as possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.exceptions import QueryError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    Expr,
    Literal,
    NodePattern,
    PropertyRef,
    Query,
    contains_aggregate,
    expr_text,
    variables_used,
)


@dataclass
class NodeSpec:
    """Merged constraints for one pattern variable."""

    var: str
    labels: set[str] = field(default_factory=set)
    props: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EdgeSpec:
    """One relationship pattern between two variables."""

    src_var: str        # pattern-order source (left node)
    dst_var: str
    rel_var: str | None
    labels: tuple[str, ...]
    direction: str      # out: src->dst, in: dst->src, any
    min_hops: int = 1   # variable-length patterns: -[:T*m..n]->
    max_hops: int = 1

    @property
    def is_plain_hop(self) -> bool:
        return (self.min_hops, self.max_hops) == (1, 1)


@dataclass(frozen=True)
class ScanStep:
    var: str
    slot: int = 0
    #: Access path chosen at plan time: "index" / "label" / "all".
    access: str = "all"
    access_label: str | None = None
    access_prop: str | None = None
    access_value: object = None
    #: Labels/props the access path does NOT already guarantee.
    check_labels: tuple[str, ...] = ()
    check_props: tuple[tuple[str, object], ...] = ()
    #: Pushed-down WHERE conjuncts evaluable once this step binds.
    filters: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class ExpandStep:
    from_var: str
    to_var: str
    edge: EdgeSpec
    from_slot: int = 0
    to_slot: int = 0
    rel_slot: int | None = None
    #: Traversal direction seen from ``from_var`` (the edge direction
    #: flipped when the plan walks the pattern backwards).
    walk_direction: str = "out"
    filters: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class JoinCheckStep:
    edge: EdgeSpec
    src_slot: int = 0
    dst_slot: int = 0
    rel_slot: int | None = None
    filters: tuple[Expr, ...] = ()


@dataclass
class Plan:
    steps: list
    node_specs: dict[str, NodeSpec]
    #: Variable name -> fixed binding-tuple slot.
    slots: dict[str, int] = field(default_factory=dict)
    #: Variable name -> "vertex" | "edge" (what the slot holds).
    slot_kinds: dict[str, str] = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def describe(self) -> str:
        """Human-readable rendering of steps and pushed predicates."""
        lines = []
        for i, step in enumerate(self.steps):
            if isinstance(step, ScanStep):
                if step.access == "index":
                    how = (
                        f"index lookup ({step.access_label}."
                        f"{step.access_prop} = {step.access_value!r})"
                    )
                elif step.access == "label":
                    how = f"label scan (:{step.access_label})"
                else:
                    how = "all-vertices scan"
                text = f"Scan {step.var} via {how}"
                residual = [f":{label}" for label in step.check_labels]
                residual += [
                    f"{name}={value!r}" for name, value in step.check_props
                ]
                if residual:
                    text += f" check[{', '.join(residual)}]"
            elif isinstance(step, ExpandStep):
                text = (
                    f"Expand ({step.from_var})"
                    f"{_edge_text(step.edge)}({step.to_var}) "
                    f"[{step.walk_direction}]"
                )
            else:
                text = (
                    f"JoinCheck ({step.edge.src_var})"
                    f"{_edge_text(step.edge)}({step.edge.dst_var})"
                )
                if step.edge.is_plain_hop:
                    text += " [O(1) pair probe]"
            for predicate in step.filters:
                text += f" filter[{expr_text(predicate)}]"
            lines.append(f"{i + 1}. {text}")
        return "\n".join(lines)


def _edge_text(edge: EdgeSpec) -> str:
    inner = edge.rel_var or ""
    if edge.labels:
        inner += ":" + "|".join(edge.labels)
    if not edge.is_plain_hop:
        inner += f"*{edge.min_hops}..{edge.max_hops}"
    body = f"[{inner}]" if inner else ""
    if edge.direction == "out":
        return f"-{body}->"
    if edge.direction == "in":
        return f"<-{body}-"
    return f"-{body}-"


_FLIP = {"out": "in", "in": "out", "any": "any"}


def build_plan(query: Query, graph: PropertyGraph) -> Plan:
    """Plan the MATCH portion of ``query`` against ``graph``."""
    specs, edges = _collect(query)
    if not specs:
        raise QueryError("query has no node patterns")

    conjuncts = _decompose_where(query)
    residual = [c for c in conjuncts if not _try_fold(c, specs)]

    remaining_edges = list(edges)
    bound: set[str] = set()
    slots: dict[str, int] = {}
    slot_kinds: dict[str, str] = {}
    steps: list = []
    #: Variables bound after each step (slots plus never-slotted vars
    #: do not diverge here: every slotted var is bound when allocated).
    bound_after: list[set[str]] = []

    def alloc(var: str, kind: str) -> int:
        if var in slots:
            raise QueryError(f"variable {var!r} bound more than once")
        slots[var] = len(slots)
        slot_kinds[var] = kind
        return slots[var]

    def estimate(spec: NodeSpec) -> tuple[int, int]:
        """(cost class, estimated cardinality): lower is better."""
        access, label, _prop = _choose_access(spec, graph)
        if access == "index":
            return (0, 1)
        if access == "label":
            cost_class = 1 if spec.props else 2
            return (cost_class, graph.label_count(label))
        return (3, graph.num_vertices)

    unbound = set(specs)
    while unbound:
        # Pick the cheapest unbound variable as this component's start.
        start = min(unbound, key=lambda v: (estimate(specs[v]), v))
        steps.append(
            _make_scan(specs[start], graph, alloc(start, "vertex"))
        )
        bound.add(start)
        bound_after.append(set(bound))
        unbound.discard(start)
        # Greedily expand along pattern edges into the bound set.
        progress = True
        while progress:
            progress = False
            for edge in list(remaining_edges):
                src_bound = edge.src_var in bound
                dst_bound = edge.dst_var in bound
                if src_bound and dst_bound:
                    rel_slot = (
                        alloc(edge.rel_var, "edge")
                        if edge.rel_var and edge.is_plain_hop
                        else None
                    )
                    steps.append(
                        JoinCheckStep(
                            edge,
                            src_slot=slots[edge.src_var],
                            dst_slot=slots[edge.dst_var],
                            rel_slot=rel_slot,
                        )
                    )
                    if edge.rel_var and edge.is_plain_hop:
                        bound.add(edge.rel_var)
                elif src_bound or dst_bound:
                    from_var = edge.src_var if src_bound else edge.dst_var
                    to_var = edge.dst_var if src_bound else edge.src_var
                    from_slot = slots[from_var]
                    to_slot = alloc(to_var, "vertex")
                    rel_slot = (
                        alloc(edge.rel_var, "edge")
                        if edge.rel_var and edge.is_plain_hop
                        else None
                    )
                    steps.append(
                        ExpandStep(
                            from_var,
                            to_var,
                            edge,
                            from_slot=from_slot,
                            to_slot=to_slot,
                            rel_slot=rel_slot,
                            walk_direction=(
                                edge.direction
                                if from_var == edge.src_var
                                else _FLIP[edge.direction]
                            ),
                        )
                    )
                    bound.add(to_var)
                    if edge.rel_var and edge.is_plain_hop:
                        bound.add(edge.rel_var)
                    unbound.discard(to_var)
                else:
                    continue
                remaining_edges.remove(edge)
                bound_after.append(set(bound))
                progress = True
    _attach_filters(steps, bound_after, residual)
    return Plan(steps, specs, slots, slot_kinds)


def _hashable_value(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _choose_access(
    spec: NodeSpec, graph: PropertyGraph
) -> tuple[str, str | None, str | None]:
    """(access kind, label, prop): the single source of scan selection.

    Both the start-point cost model and the emitted :class:`ScanStep`
    derive from this, so they cannot disagree.
    """
    for prop, value in spec.props.items():
        if not _hashable_value(value):
            continue  # index buckets are keyed by value
        for label in spec.labels:
            if graph.has_property_index(label, prop):
                return ("index", label, prop)
    if spec.labels:
        return ("label", min(spec.labels, key=graph.label_count), None)
    return ("all", None, None)


def _make_scan(spec: NodeSpec, graph: PropertyGraph, slot: int) -> ScanStep:
    """Build the scan step and record its residual checks."""
    access, label, prop = _choose_access(spec, graph)
    return ScanStep(
        spec.var,
        slot=slot,
        access=access,
        access_label=label,
        access_prop=prop,
        access_value=spec.props[prop] if prop is not None else None,
        check_labels=tuple(
            l for l in sorted(spec.labels) if l != label
        ),
        check_props=tuple(
            (name, value)
            for name, value in spec.props.items()
            if name != prop
        ),
    )


# ----------------------------------------------------------------------
# WHERE decomposition and pushdown
# ----------------------------------------------------------------------
def _decompose_where(query: Query) -> list[Expr]:
    if query.where is None:
        return []
    if contains_aggregate(query.where):
        raise QueryError("aggregate functions are not allowed in WHERE")
    return _conjuncts(query.where)


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expr]


def _try_fold(conjunct: Expr, specs: dict[str, NodeSpec]) -> bool:
    """Fold ``x.p = literal`` into x's NodeSpec props when equivalent.

    Folding is skipped (conjunct stays a runtime filter) when the
    literal is null (``= null`` is always false in our semantics, while
    a prop constraint would invert that) or when it conflicts with an
    existing constraint (the query then just matches nothing, which the
    residual filter preserves without raising).
    """
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return False
    for prop_ref, literal in (
        (conjunct.lhs, conjunct.rhs),
        (conjunct.rhs, conjunct.lhs),
    ):
        if not isinstance(prop_ref, PropertyRef):
            continue
        if not isinstance(literal, Literal) or literal.value is None:
            continue
        if not _hashable_value(literal.value):
            continue  # property indexes can't look this up
        spec = specs.get(prop_ref.var)
        if spec is None:
            continue
        existing = spec.props.get(prop_ref.prop)
        if existing is not None:
            return existing == literal.value  # conflicting: keep residual
        spec.props[prop_ref.prop] = literal.value
        return True
    return False


def _attach_filters(
    steps: list, bound_after: list[set[str]], residual: list[Expr]
) -> None:
    """Attach each conjunct to the earliest step binding its variables."""
    if not residual or not steps:
        return
    extra: dict[int, list[Expr]] = {}
    last = len(steps) - 1
    for conjunct in residual:
        used = variables_used(conjunct)
        target = last
        for i, bound in enumerate(bound_after):
            if used <= bound:
                target = i
                break
        extra.setdefault(target, []).append(conjunct)
    for i, filters in extra.items():
        steps[i] = replace(
            steps[i], filters=steps[i].filters + tuple(filters)
        )


def _collect(
    query: Query,
) -> tuple[dict[str, NodeSpec], list[EdgeSpec]]:
    """Merge node patterns by variable and list relationship patterns."""
    specs: dict[str, NodeSpec] = {}
    edges: list[EdgeSpec] = []
    fresh = (f"_anon{i}" for i in itertools.count())

    def intern(node: NodePattern) -> str:
        var = node.var or next(fresh)
        spec = specs.setdefault(var, NodeSpec(var))
        spec.labels.update(node.labels)
        for name, literal in node.props:
            _merge_prop(spec, name, literal)
        return var

    for pattern in query.patterns:
        node_vars = [intern(node) for node in pattern.nodes]
        for i, rel in enumerate(pattern.rels):
            edges.append(
                EdgeSpec(
                    src_var=node_vars[i],
                    dst_var=node_vars[i + 1],
                    rel_var=rel.var,
                    labels=rel.labels,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                )
            )
    return specs, edges


def _merge_prop(spec: NodeSpec, name: str, literal: Literal) -> None:
    if name in spec.props and spec.props[name] != literal.value:
        raise QueryError(
            f"conflicting property filters on {spec.var}.{name}"
        )
    spec.props[name] = literal.value
