"""Aggregate and scalar function implementations for the executor.

Null handling follows Cypher: aggregates skip null inputs; ``size`` of
null is null; comparisons involving null are false (a simplification of
Cypher's ternary logic that matches how the benchmark queries behave).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import QueryError


def _flatten(values: Sequence) -> list:
    """Expand list elements in-place (used by rewritten aggregates)."""
    flat: list = []
    for value in values:
        if isinstance(value, list):
            flat.extend(value)
        elif value is not None:
            flat.append(value)
    return flat


def _non_null(values: Sequence) -> list:
    return [v for v in values if v is not None]


def apply_aggregate(
    name: str,
    values: Sequence,
    distinct: bool = False,
    flatten: bool = False,
) -> object:
    """Apply aggregate ``name`` over per-row ``values``."""
    values = _flatten(values) if flatten else _non_null(values)
    if distinct:
        seen: list = []
        for value in values:
            key = tuple(value) if isinstance(value, list) else value
            if key not in seen:
                seen.append(key)
        values = [
            list(v) if isinstance(v, tuple) else v for v in seen
        ]
    if name == "count":
        return len(values)
    if name == "collect":
        return list(values)
    if name == "sum":
        return sum(values) if values else 0
    if name == "avg":
        return sum(values) / len(values) if values else None
    if name == "min":
        return min(values) if values else None
    if name == "max":
        return max(values) if values else None
    raise QueryError(f"unknown aggregate function {name!r}")


def apply_scalar(name: str, args: Sequence) -> object:
    """Apply scalar function ``name`` to already-evaluated arguments."""
    if name == "size":
        if not args:
            raise QueryError("size() needs one argument")
        value = args[0]
        if value is None:
            return None
        if isinstance(value, (list, str)):
            return len(value)
        raise QueryError(f"size() of non-collection {type(value).__name__}")
    if name == "head":
        value = args[0] if args else None
        if isinstance(value, list):
            return value[0] if value else None
        return value
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    raise QueryError(f"unknown scalar function {name!r}")


def compare(op: str, lhs: object, rhs: object) -> bool:
    """Evaluate a comparison with null-is-false semantics."""
    if op == "in":
        if rhs is None or lhs is None:
            return False
        if not isinstance(rhs, (list, tuple)):
            raise QueryError("IN expects a list on the right-hand side")
        return lhs in rhs
    if lhs is None or rhs is None:
        return False
    if op == "=":
        return lhs == rhs
    if op == "<>":
        return lhs != rhs
    if op == "contains":
        if not isinstance(lhs, str) or not isinstance(rhs, str):
            return False
        return rhs in lhs
    try:
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")
