"""Morsel-driven parallel execution over shared-memory columns.

The vectorized pipeline (PR 8) still runs on one core.  This module
dispatches its batch kernels across a persistent pool of worker
*processes*: the scan's candidate vid arrays and the int64/float64
property columns are exported once per graph epoch into
``multiprocessing.shared_memory`` segments, each worker attaches them
zero-copy, and the coordinator scatters :class:`~repro.graphdb.morsel.
Morsel`\\ s (one vectorized batch each) and gathers partial results.

Three workloads run here:

* **scan / aggregate queries** - workers run the *same* compiled mask
  and projection kernels as serial vectorized execution
  (:func:`vectorized.compile_mask` / :func:`vectorized._compile_item`)
  against a recording session, and the coordinator replays the
  recorded work-counter charges against the real session in exact
  serial order.  Because a morsel is exactly one serial batch
  (``vectorized.BATCH_ROWS`` rows), page runs split identically and
  the six work counters come out tuple-identical to both serial
  paths - the differential harness asserts serial ≡ vectorized ≡
  parallel on rows *and* counters.
* **PageRank** - the power iteration partitioned by destination
  vertex: edges are sorted by ``dst`` once, each worker owns a
  contiguous destination range, and every iteration is a barrier
  (scatter shares, gather partial incoming-mass vectors, reduce
  dangling mass on the coordinator).  Scores match the serial kernel
  to float tolerance (summation order differs), not bit-exactly.
* **statistics builds** - per-table histogram tasks plus chunked
  edge-combination counting; ``Counter`` merges are order-independent
  so the result equals a serial :meth:`GraphStatistics.build`.

Aggregate exactness is preserved by *not* summarizing per morsel:
float sums are a sequential left fold and NaN min/max folds are
history-dependent, so workers return the masked value arrays (raw
``float64``/``int64`` bytes, at most ``BATCH_ROWS`` values) and the
coordinator runs the serial :class:`vectorized._Aggregator` folds
morsel by morsel in serial order.

Serial remains the default and the oracle: the executor only picks
this path when the plan already qualifies for vectorized mode, the
scan is the whole plan, and estimated rows clear
``parallel_threshold``.  Every rejection is counted per reason in
``repro_parallel_fallback_total`` and lands on
``ExecutionReport.parallel_reason``.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import time
import multiprocessing as mp
from multiprocessing import shared_memory

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - CI images all carry numpy
    np = None
    HAVE_NUMPY = False

from repro.exceptions import ParallelExecutionError
from repro.graphdb import faults, observe
from repro.graphdb.columnar import KIND_FLOAT, KIND_INT
from repro.graphdb.metrics import ExecutionMetrics
from repro.graphdb.morsel import MorselSource
from repro.graphdb.query import vectorized
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    FuncCall,
    NotOp,
    NullCheck,
    PropertyRef,
    contains_aggregate,
)
from repro.graphdb.query.executor import _resolve_props
from repro.graphdb.query.planner import ScanStep

__all__ = [
    "WorkerPool",
    "build_parallel_pipeline",
    "get_pool",
    "live_segment_names",
    "parallel_build_stats",
    "parallel_pagerank",
    "resolve_parallelism",
    "resolve_threshold",
    "shutdown_pool",
]

#: Environment knobs (also threaded through ``connect()`` / the CLI).
PARALLEL_ENV = "REPRO_PARALLEL"
THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"
START_METHOD_ENV = "REPRO_PARALLEL_START"

#: Minimum estimated scan rows before the parallel path engages.
#: Below this, per-morsel dispatch overhead dwarfs the work.
DEFAULT_THRESHOLD = 8192

#: The four work counters replayed additively; page hits/misses are
#: replayed as ordered page runs through the real session's LRU.
_REPLAY_COUNTERS = (
    "vertex_reads", "property_reads", "index_lookups", "edge_traversals",
)

_MORSELS = observe.REGISTRY.counter(
    "repro_morsels_dispatched_total",
    "Morsels dispatched to the parallel worker pool.",
)
_PARALLEL_FALLBACKS = observe.REGISTRY.labeled_counter(
    "repro_parallel_fallback_total",
    "reason",
    "Queries that qualified for vectorized mode but not parallel "
    "dispatch, per reason.",
)
_WORKER_FAILURES = observe.REGISTRY.counter(
    "repro_parallel_worker_failures_total",
    "Worker tasks that failed or worker processes that died mid-job.",
)
_WORKER_BUSY = observe.REGISTRY.histogram(
    "repro_parallel_worker_busy_seconds",
    help="Per-task busy time reported by pool workers.",
)

#: Failpoints: ``parallel.dispatch`` fires on the coordinator as a job
#: starts; ``parallel.worker`` fires inside each worker task (armed
#: specs are shipped in the task payload - failpoint arming is
#: process-local and does not propagate to pool workers by itself).
FP_DISPATCH = faults.REGISTRY.register("parallel.dispatch")
FP_WORKER = faults.REGISTRY.register("parallel.worker")


def resolve_parallelism(value: object = None) -> int:
    """Normalize a worker count: explicit value, else ``REPRO_PARALLEL``,
    else 1 (serial)."""
    if value is None:
        value = os.environ.get(PARALLEL_ENV)
        if value in (None, ""):
            return 1
    try:
        workers = int(value)
    except (TypeError, ValueError):
        raise ParallelExecutionError(
            f"parallelism must be an integer, got {value!r}"
        ) from None
    return max(1, workers)


def resolve_threshold(value: object = None) -> int:
    """Normalize the minimum-rows threshold for parallel dispatch."""
    if value is None:
        value = os.environ.get(THRESHOLD_ENV)
        if value in (None, ""):
            return DEFAULT_THRESHOLD
    try:
        return max(0, int(value))
    except (TypeError, ValueError):
        raise ParallelExecutionError(
            f"parallel threshold must be an integer, got {value!r}"
        ) from None


# ----------------------------------------------------------------------
# Shared-memory arena (coordinator side)
# ----------------------------------------------------------------------
#: Names of every segment this process created and has not yet
#: unlinked.  Tests assert this is empty (and /dev/shm clean) after
#: ``shutdown_pool()`` - the no-leak contract.
_LIVE_SEGMENTS: set[str] = set()


def live_segment_names() -> frozenset[str]:
    return frozenset(_LIVE_SEGMENTS)


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    _LIVE_SEGMENTS.add(shm.name)
    return shm


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    name = shm.name
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    _LIVE_SEGMENTS.discard(name)


class ShmArena:
    """Owns shared-memory copies of numpy arrays, keyed for reuse.

    Column exports are keyed ``(graph key, epoch, prop, part)`` so a
    second query on the same frozen graph pays nothing; stale epochs
    are dropped when the same graph re-exports after a mutation.
    Job-scoped segments (scan candidates, PageRank edge arrays) are
    dropped when their job ends.
    """

    def __init__(self):
        self._segments: dict[object, shared_memory.SharedMemory] = {}
        self._descs: dict[object, tuple[str, str, int]] = {}

    def share(self, key, arr) -> tuple[str, str, int]:
        """Copy ``arr`` into a segment (idempotent per key); returns a
        picklable ``(name, dtype, length)`` descriptor."""
        desc = self._descs.get(key)
        if desc is not None:
            return desc
        arr = np.ascontiguousarray(arr)
        shm = _create_segment(arr.nbytes)
        if len(arr):
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[:] = arr
        self._segments[key] = shm
        desc = (shm.name, arr.dtype.str, len(arr))
        self._descs[key] = desc
        return desc

    def create_buffer(self, key, shape, dtype):
        """A *writable* segment the coordinator mutates between
        barriers (the PageRank rank vector).  Returns ``(view, desc)``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        shm = _create_segment(nbytes)
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self._segments[key] = shm
        desc = (shm.name, dtype.str, int(np.prod(shape)))
        self._descs[key] = desc
        return view, desc

    def drop(self, predicate) -> None:
        """Unlink every segment whose key satisfies ``predicate``."""
        for key in [k for k in self._segments if predicate(k)]:
            _unlink_segment(self._segments.pop(key))
            self._descs.pop(key, None)

    def close(self) -> None:
        for shm in self._segments.values():
            _unlink_segment(shm)
        self._segments.clear()
        self._descs.clear()


_GRAPH_KEYS = iter(range(1, 2 ** 62))


def _graph_key(graph) -> int:
    """A stable arena key per graph object (``id()`` can be reused
    after garbage collection; this cannot)."""
    key = getattr(graph, "_parallel_arena_key", None)
    if key is None:
        key = next(_GRAPH_KEYS)
        graph._parallel_arena_key = key
    return key


# ----------------------------------------------------------------------
# Worker-side attach cache
# ----------------------------------------------------------------------
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, object]] = {}


def _attach(desc: tuple[str, str, int]):
    """Attach a segment by descriptor, cached per worker process."""
    name, dtype, length = desc
    cached = _ATTACHED.get(name)
    if cached is None:
        # Python <3.13 registers even *attached* segments with the
        # resource tracker, which would unlink them out from under the
        # coordinator when this worker exits (and, under fork, sends a
        # spurious unregister to the shared tracker).  Workers never
        # create segments, so suppress registration for the attach.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        arr = np.ndarray((length,), dtype=np.dtype(dtype), buffer=shm.buf)
        cached = (shm, arr)
        _ATTACHED[name] = cached
    return cached[1]


def _prune_worker_caches() -> None:
    """Bound worker memory: drop attach + compile caches between tasks
    once they grow large.  References only - unlinking is the
    coordinator's job; dropped segments re-attach on demand."""
    if len(_ATTACHED) > 256:
        _ATTACHED.clear()
        _JOB_CACHE.clear()


# ----------------------------------------------------------------------
# Charge recording and replay
# ----------------------------------------------------------------------
class _Recorder:
    """A :class:`GraphSession` stand-in that *records* work-counter
    charges instead of applying them.

    The vectorized kernels only touch ``session.metrics`` (additive
    counters) and ``session.charge_page_runs`` (ordered page runs), so
    recording those two streams is enough to replay an execution's
    charges against the real session - in serial order, through the
    real page LRU, producing identical hit/miss splits.
    """

    __slots__ = (
        "graph", "metrics", "page_log",
        "_vertices_per_page", "_adjacency_per_page",
    )

    def __init__(self, vertices_per_page, adjacency_per_page, graph=None):
        self.graph = graph
        self.metrics = ExecutionMetrics()
        self.page_log: list[tuple[str, list[int], int]] = []
        self._vertices_per_page = vertices_per_page
        self._adjacency_per_page = adjacency_per_page

    def charge_page_runs(self, kind, run_pages, extra_hits) -> None:
        self.page_log.append((kind, list(run_pages), int(extra_hits)))

    def take(self) -> tuple[tuple[int, int, int, int], list]:
        """Drain recorded charges: ``(counters, page_log)``.

        Counters are zeroed *in place* - compiled kernels capture
        ``session.metrics`` (the object) at compile time, so swapping
        in a fresh :class:`ExecutionMetrics` would orphan them."""
        m = self.metrics
        counters = (
            m.vertex_reads, m.property_reads,
            m.index_lookups, m.edge_traversals,
        )
        m.vertex_reads = 0
        m.property_reads = 0
        m.index_lookups = 0
        m.edge_traversals = 0
        log = self.page_log
        self.page_log = []
        return counters, log


def _replay(session, counters, page_log) -> None:
    """Apply recorded charges to the real session, in order."""
    m = session.metrics
    m.vertex_reads += counters[0]
    m.property_reads += counters[1]
    m.index_lookups += counters[2]
    m.edge_traversals += counters[3]
    for kind, run_pages, extra_hits in page_log:
        session.charge_page_runs(kind, run_pages, extra_hits)


class _PlanStub:
    """The two plan attributes kernels read, in picklable form."""

    __slots__ = ("slots", "slot_kinds", "num_slots")

    def __init__(self, slots, slot_kinds, num_slots):
        self.slots = slots
        self.slot_kinds = slot_kinds
        self.num_slots = num_slots


class _ShmArrays:
    """A :class:`vectorized.GraphArrays` stand-in for workers: columns
    reconstructed over shared-memory buffers."""

    def __init__(self, column_descs):
        self._descs = column_descs
        self._columns: dict[str, vectorized._Column] = {}

    def column(self, name: str) -> vectorized._Column:
        col = self._columns.get(name)
        if col is None:
            kind, values_desc, present_desc, vmin, vmax = self._descs[name]
            values = None if values_desc is None else _attach(values_desc)
            present = None if present_desc is None else _attach(present_desc)
            # has_tids/examined drive the *coordinator's* per-table
            # scan charging; worker kernels never read them.
            col = vectorized._Column(
                kind, values, present, frozenset(), {}, vmin, vmax
            )
            self._columns[name] = col
        return col


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def _default_start_method() -> str:
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _arm_payload_faults(payload) -> None:
    for spec in payload.get("faults") or ():
        faults.REGISTRY.arm(spec)


def _armed_worker_faults() -> list:
    """Armed ``parallel.worker*`` specs, to ship inside task payloads
    (worker processes do not share the coordinator's registry)."""
    specs = []
    for point in faults.REGISTRY.armed_points():
        if point.startswith("parallel.worker"):
            armed = faults.REGISTRY._armed.get(point)
            if armed is not None:
                specs.append(armed.spec)
    return specs


def _worker_main(tasks, results) -> None:  # pragma: no cover - subprocess
    """Worker loop: pull ``(task_id, kind, payload)``, push
    ``(task_id, ok, out, busy_seconds)``.  A :class:`SimulatedCrash`
    escapes and kills the process - that is the point."""
    while True:
        try:
            item = tasks.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        task_id, kind, payload = item
        started = time.perf_counter()
        try:
            out = _HANDLERS[kind](payload)
        except faults.SimulatedCrash:
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - reported upstream
            results.put((
                task_id, False,
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - started,
            ))
            _prune_worker_caches()
            continue
        results.put((task_id, True, out, time.perf_counter() - started))
        _prune_worker_caches()


class WorkerPool:
    """A persistent pool of daemon worker processes.

    Workers are spawned lazily on first use and respawned (at the next
    job) if one died - a crashed worker fails the in-flight job with
    :class:`ParallelExecutionError` but never poisons the pool.
    ``shutdown()`` joins workers and unlinks every shared-memory
    segment the arena owns.
    """

    def __init__(self, workers: int, start_method: str | None = None):
        self.workers = max(1, int(workers))
        self._ctx = mp.get_context(start_method or _default_start_method())
        self._tasks = None
        self._results = None
        self._procs: list = []
        self.arena = ShmArena()
        self._task_seq = 0
        self._job_seq = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def ensure_started(self) -> None:
        if self._closed:
            raise ParallelExecutionError("worker pool is closed")
        if self._tasks is None:
            self._tasks = self._ctx.Queue()
            self._results = self._ctx.Queue()
        self._procs = [p for p in self._procs if p.is_alive()]
        while len(self._procs) < self.workers:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"repro-parallel-{len(self._procs)}",
            )
            proc.start()
            self._procs.append(proc)

    def shutdown(self) -> None:
        if self._tasks is not None:
            for _ in self._procs:
                try:
                    self._tasks.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    break
            for proc in self._procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5)
            for q in (self._tasks, self._results):
                q.close()
                q.cancel_join_thread()
        self._procs = []
        self._tasks = self._results = None
        self.arena.close()
        self._closed = True

    def job_id(self) -> str:
        self._job_seq += 1
        return f"j{os.getpid()}-{self._job_seq}"

    # -- task traffic --------------------------------------------------
    def submit(self, kind: str, payload: dict) -> int:
        self._task_seq += 1
        self._tasks.put((self._task_seq, kind, payload))
        return self._task_seq

    def collect(self, timeout: float = 0.25):
        """One raw result tuple, or ``None`` on timeout.  Raises
        :class:`ParallelExecutionError` when a worker process died
        (after a grace re-check so in-flight results drain first)."""
        try:
            return self._results.get(timeout=timeout)
        except queue_mod.Empty:
            if any(not p.is_alive() for p in self._procs):
                try:
                    return self._results.get(timeout=0.5)
                except queue_mod.Empty:
                    _WORKER_FAILURES.inc()
                    raise ParallelExecutionError(
                        "a parallel worker process died mid-job "
                        "(results incomplete); the pool will respawn "
                        "workers on the next query"
                    ) from None
            return None


_POOL: WorkerPool | None = None


def get_pool(workers: int = 2) -> WorkerPool:
    """The process-wide pool, grown to at least ``workers``."""
    global _POOL
    workers = max(1, int(workers))
    if _POOL is None or _POOL._closed:
        _POOL = WorkerPool(workers)
    elif workers > _POOL.workers:
        _POOL.workers = workers
    return _POOL


def shutdown_pool() -> None:
    """Stop the shared pool and unlink every shm segment (atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)


def _gather_all(pool: WorkerPool, wanted: dict, guard=None) -> dict:
    """Barrier gather: block until every task in ``wanted`` reported.
    Stale results from aborted jobs are discarded by task id."""
    out = {}
    while wanted:
        got = pool.collect()
        if got is None:
            if guard is not None:
                guard.check_deadline()
            continue
        task_id, ok, res, busy = got
        _WORKER_BUSY.observe(busy)
        key = wanted.pop(task_id, None)
        if key is None:
            continue
        if not ok:
            _WORKER_FAILURES.inc()
            raise ParallelExecutionError(
                f"parallel worker task failed: {res}"
            )
        out[key] = res
    return out


# ----------------------------------------------------------------------
# Workload (a): scans and aggregates
# ----------------------------------------------------------------------
def _collect_props(query, step) -> set[str]:
    """Every property name the worker-side kernels will read."""
    names: set[str] = set()

    def walk(expr):
        if isinstance(expr, PropertyRef):
            names.add(expr.prop)
        elif isinstance(expr, Comparison):
            walk(expr.lhs)
            walk(expr.rhs)
        elif isinstance(expr, BoolOp):
            for op in expr.operands:
                walk(op)
        elif isinstance(expr, NotOp):
            walk(expr.operand)
        elif isinstance(expr, NullCheck):
            walk(expr.expr)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                walk(arg)

    for f in step.filters:
        walk(f)
    for item in query.return_items:
        walk(item.expr)
    return names


def _scan_segments(recorder, arrays, graph, step: ScanStep, params):
    """Mirror :func:`vectorized._build_scan`'s candidate generation
    *and charging*, segmented for replay.

    Returns ``(segments, trailing)`` - ``segments`` is an ordered list
    of ``((counters, page_log), passing_vids)`` pairs, one per table
    that admitted rows, where the recorded charges are everything the
    serial generator charges between the previous table's last batch
    and this table's first; ``trailing`` is what it charges after the
    final batch (tables rejected at the end).  Returns ``None`` for an
    unsatisfiable ``$param`` (serial yields nothing and charges
    nothing - not worth a pool round-trip).
    """
    check_labels = (
        frozenset(step.check_labels) if step.check_labels else None
    )
    props = _resolve_props(step.check_props, params)
    if props is None:
        return None
    session = recorder
    metrics = session.metrics
    segments: list = []

    if check_labels is None and not props:
        if step.access == "label":
            metrics.index_lookups += 1
            candidates = arrays.label_vids(step.access_label)
        else:
            candidates = arrays.all_vids()
        if len(candidates):
            segments.append((session.take(), candidates))
        return segments, session.take()

    primary = props[0] if props else None
    primary_spec = (
        vectorized._eq_spec(arrays, primary[0], primary[1])
        if primary is not None else None
    )
    rest_specs = [
        vectorized._eq_spec(arrays, name, value)
        for name, value in props[1:]
    ]
    n_props = len(props)
    count_labels = check_labels is not None
    label_sid = None
    if step.access == "label":
        label_sid = graph._symbols.sid(step.access_label)
        if label_sid is None:
            metrics.index_lookups += 1
            return segments, session.take()
    metrics.index_lookups += 1
    for tid, table in enumerate(graph._tables):
        if table.live <= 0:
            continue
        if label_sid is not None and label_sid not in table.label_sids:
            continue
        vids = arrays.table_vids(tid)
        if check_labels is not None and not (check_labels <= table.labels):
            metrics.vertex_reads += len(vids)
            continue
        live = len(vids)
        examined = live
        if primary is not None:
            mode, col, value = primary_spec
            if tid not in col.has_tids and value is not None:
                metrics.property_reads += live
                continue
            if value is not None:
                examined = col.examined.get(tid, live)
            passing = vids[vectorized._eq_mask(mode, col, value, vids)]
        else:
            passing = vids
        vectorized._charge_pages(session, "v", passing, dedup=True)
        for mode, col, value in rest_specs:
            if not len(passing):
                break
            passing = passing[vectorized._eq_mask(mode, col, value, passing)]
        if count_labels:
            metrics.vertex_reads += examined
        metrics.property_reads += examined * n_props
        if len(passing):
            segments.append((session.take(), passing))
    return segments, session.take()


class _Merger:
    """Coordinator-side fold state for one aggregate RETURN item.

    Wraps a real :class:`vectorized._Aggregator` (constructed without
    its charging reader) so merge results reuse the serial fold code
    verbatim - per-morsel value arrays are folded in serial order,
    which is what keeps float sums and NaN min/max bit-identical."""

    __slots__ = ("agg", "is_prop", "dtype")

    def __init__(self, name: str, col) -> None:
        agg = vectorized._Aggregator.__new__(vectorized._Aggregator)
        agg.name = name
        agg.count = 0
        agg.total = 0
        agg.best = None
        agg.read = None
        agg.col = col
        safe = 0
        if col is not None and col.kind == KIND_INT and col.vmin is not None:
            safe = max(abs(col.vmin), abs(col.vmax))
        agg._safe_mag = safe
        self.agg = agg
        self.is_prop = col is not None
        self.dtype = (
            None if col is None
            else (np.int64 if col.kind == KIND_INT else np.float64)
        )

    def fold(self, payload, n: int) -> None:
        agg = self.agg
        if not self.is_prop:
            agg.count += n  # count(*) / count(var)
            return
        k, raw = payload
        if agg.name == "count":
            agg.count += k
            return
        if k == 0:
            return
        agg.count += k
        values = np.frombuffer(raw, dtype=self.dtype)
        if self.dtype is np.int64:
            agg._fold_int(values, k)
        else:
            agg._fold_float(values)


def _shape_reason(query, plan, threshold: int) -> str | None:
    """Why this (already vectorized-qualified) plan should not go
    parallel.  ``None`` means dispatch."""
    if not HAVE_NUMPY:
        return "numpy-unavailable"
    if len(plan.steps) != 1 or not isinstance(plan.steps[0], ScanStep):
        return "multi-step"
    est = plan.steps[0].est_rows
    if est is not None and est < threshold:
        return "small-scan"
    return None


def build_parallel_pipeline(
    query,
    plan,
    session,
    params,
    workers: int,
    guard=None,
    step_counts=None,
    step_times=None,
    report=None,
    threshold: int | None = None,
    pool: WorkerPool | None = None,
):
    """Compile a morsel-parallel pipeline, or decline with a counted
    reason (the executor then falls through to serial vectorized).

    Like :func:`vectorized.build_pipeline`, every rejection happens
    here, before any work-counter charge; a returned pipeline replays
    charges exactly and cannot fall back mid-run.  Returns
    ``(columns, row_iterator)`` or ``None``.
    """
    threshold = (
        resolve_threshold() if threshold is None else max(0, int(threshold))
    )

    def decline(reason: str):
        _PARALLEL_FALLBACKS.inc(reason)
        if report is not None:
            report.parallel_reason = reason
        return None

    if workers < 2:
        return decline("single-worker")
    reason = vectorized.query_fallback_reason(query, plan)
    if reason is not None:
        # Not vectorizable at all - serial vectorized will decline it
        # with the same reason; parallel requires vectorized-mode
        # qualification as a precondition.
        return decline(reason)
    reason = _shape_reason(query, plan, threshold)
    if reason is not None:
        return decline(reason)

    graph = session.graph
    arrays = vectorized.graph_arrays(graph)
    step = plan.steps[0]
    vpp = session._vertices_per_page
    app = session._adjacency_per_page

    # Validate that every kernel the workers will build compiles -
    # worker-side compilation must be infallible, and a fallback after
    # charges began would corrupt the equivalence contract.
    probe = _Recorder(vpp, app, graph)
    probe_ctx = vectorized._KernelContext(probe, arrays, plan, params)
    try:
        for f in step.filters:
            vectorized.compile_mask(probe_ctx, f)
        columns, _ = vectorized._compile_output(query, plan, probe_ctx)
    except vectorized._Fallback as fb:
        return decline(fb.reason)

    try:
        scanned = _scan_segments(
            _Recorder(vpp, app, graph), arrays, graph, step, params
        )
    except vectorized._Fallback as fb:
        # The scan's inline property map hit an unkernelable column
        # (object/mixed) - same refusal the serial batch path makes.
        return decline(fb.reason)
    if scanned is None:
        return decline("unsat-params")
    segments, trailing = scanned
    if step.est_rows is None:
        # No cardinality estimate (stats missing): gate on the actual
        # candidate count instead.
        if sum(len(p) for _, p in segments) < threshold:
            return decline("small-scan")

    aggregating = any(
        contains_aggregate(item.expr) for item in query.return_items
    )
    if aggregating:
        agg_specs = []
        mergers = []
        for item in query.return_items:
            expr = item.expr
            arg = expr.args[0] if expr.args else None
            if isinstance(arg, PropertyRef):
                agg_specs.append(("prop", expr.name, arg.var, arg.prop))
                mergers.append(
                    _Merger(expr.name, arrays.column(arg.prop))
                )
            else:  # Star / Variable: row-count only, no charges
                agg_specs.append(("plain", expr.name, None, None))
                mergers.append(_Merger(expr.name, None))
        output_spec = ("agg", agg_specs)
    else:
        mergers = None
        output_spec = ("rows", tuple(item.expr for item in query.return_items))

    pool = pool if pool is not None else get_pool(workers)
    gkey = _graph_key(graph)
    epoch = arrays.epoch
    # Stale-epoch columns of this graph are dead weight; drop them.
    pool.arena.drop(
        lambda k: isinstance(k, tuple) and len(k) == 5
        and k[0] == "col" and k[1] == gkey and k[2] != epoch
    )
    column_descs = {}
    for name in _collect_props(query, step):
        col = arrays.column(name)
        values_desc = (
            None if col.values is None
            else pool.arena.share(("col", gkey, epoch, name, "v"), col.values)
        )
        present_desc = (
            None if col.present is None
            else pool.arena.share(("col", gkey, epoch, name, "p"), col.present)
        )
        column_descs[name] = (
            col.kind, values_desc, present_desc, col.vmin, col.vmax
        )

    job = pool.job_id()
    spec = {
        "job": job,
        "vpp": vpp,
        "app": app,
        "slot": step.slot,
        "nslots": plan.num_slots,
        "slots": dict(plan.slots),
        "slot_kinds": dict(plan.slot_kinds),
        "filters": tuple(step.filters),
        "params": dict(params),
        "columns": column_descs,
        "output": output_spec,
    }

    if report is not None:
        report.mode = "parallel"

    rows = _drive_parallel(
        pool, session, job, spec, segments, trailing, mergers,
        guard, step_counts, step_times, report,
    )
    return columns, rows


def _drive_parallel(
    pool, session, job, spec, segments, trailing, mergers,
    guard, step_counts, step_times, report,
):
    """The scatter-gather loop, lazy like the serial pipelines: no
    dispatch (and no charge) until the first row is pulled.

    Dispatch runs in bounded waves (≈2 tasks per worker in flight)
    with deadline checks between submissions, so a guard timeout
    cancels outstanding morsels between batches instead of flooding
    the queue.  Results are *consumed* strictly in morsel order and
    their recorded charges replayed through the real session - the
    whole point of the exercise."""
    timing = step_times is not None
    perf = time.perf_counter

    def drive():
        started = perf() if timing else 0.0
        try:
            pool.ensure_started()
            faults.fire("parallel.dispatch")
            worker_faults = _armed_worker_faults()
            batch_rows = vectorized.BATCH_ROWS
            seg_descs = [
                pool.arena.share(("scanjob", job, i), passing)
                for i, (_, passing) in enumerate(segments)
            ]
            morsels = list(MorselSource(
                [len(p) for _, p in segments], batch_rows
            ))
            inflight_cap = max(2 * pool.workers, 2)
            wanted: dict[int, int] = {}
            ready: dict[int, tuple] = {}
            next_dispatch = 0
            current_segment = -1
            for next_consume in range(len(morsels)):
                while (
                    next_dispatch < len(morsels)
                    and next_dispatch - next_consume < inflight_cap
                ):
                    if guard is not None:
                        guard.check_deadline()
                    m = morsels[next_dispatch]
                    task_id = pool.submit("scan", {
                        "spec": spec,
                        "segment": seg_descs[m.segment],
                        "start": m.start,
                        "stop": m.stop,
                        "faults": worker_faults,
                    })
                    wanted[task_id] = next_dispatch
                    _MORSELS.inc()
                    next_dispatch += 1
                while next_consume not in ready:
                    if guard is not None:
                        guard.check_deadline()
                    got = pool.collect()
                    if got is None:
                        continue
                    task_id, ok, out, busy = got
                    _WORKER_BUSY.observe(busy)
                    idx = wanted.pop(task_id, None)
                    if idx is None:
                        continue  # stale result from an aborted job
                    if not ok:
                        _WORKER_FAILURES.inc()
                        raise ParallelExecutionError(
                            f"parallel worker task failed: {out}"
                        )
                    ready[idx] = out
                n, counters, page_log, payload = ready.pop(next_consume)
                morsel = morsels[next_consume]
                if morsel.segment != current_segment:
                    for s in range(current_segment + 1, morsel.segment + 1):
                        _replay(session, *segments[s][0])
                    current_segment = morsel.segment
                _replay(session, counters, page_log)
                if n:
                    vectorized._BATCHES.inc()
                    if report is not None:
                        report.batches += 1
                    if step_counts is not None:
                        step_counts[0] += n
                    if mergers is not None:
                        for merger, part in zip(mergers, payload):
                            merger.fold(part, n)
                    else:
                        yield from payload
            for s in range(current_segment + 1, len(segments)):
                _replay(session, *segments[s][0])
            _replay(session, *trailing)
            if mergers is not None:
                yield tuple(m.agg.result() for m in mergers)
        finally:
            if timing:
                step_times[0] += perf() - started
            pool.arena.drop(
                lambda k: isinstance(k, tuple) and k[0] == "scanjob"
                and k[1] == job
            )

    return drive()


# -- worker side -------------------------------------------------------
class _WorkerJob:
    """Per-job compiled state cached in each worker."""

    __slots__ = ("recorder", "filters", "item_fns", "agg_specs",
                 "slot", "nslots")

    def __init__(self, recorder, filters, item_fns, agg_specs, slot, nslots):
        self.recorder = recorder
        self.filters = filters
        self.item_fns = item_fns
        self.agg_specs = agg_specs
        self.slot = slot
        self.nslots = nslots


_JOB_CACHE: dict[str, _WorkerJob] = {}


def _compile_worker_job(spec) -> _WorkerJob:
    recorder = _Recorder(spec["vpp"], spec["app"])
    arrays = _ShmArrays(spec["columns"])
    ctx = vectorized._KernelContext(
        recorder, arrays,
        _PlanStub(spec["slots"], spec["slot_kinds"], spec["nslots"]),
        spec["params"],
    )
    filters = [vectorized.compile_mask(ctx, f) for f in spec["filters"]]
    kind, payload = spec["output"]
    item_fns = agg_specs = None
    if kind == "agg":
        agg_specs = []
        for mode, name, var, prop in payload:
            if mode == "plain":
                agg_specs.append(None)
            else:
                agg_specs.append(
                    (name, spec["slots"][var], arrays.column(prop))
                )
    else:
        item_fns = [vectorized._compile_item(ctx, e) for e in payload]
    return _WorkerJob(
        recorder, filters, item_fns, agg_specs,
        spec["slot"], spec["nslots"],
    )


def _handle_scan(payload):
    """One morsel: filter + project/aggregate-gather, charges recorded.

    Replicates exactly one iteration of the serial scan generator's
    ``emit`` loop plus the consumer's per-batch work, against a
    recording session - returns ``(n, counters, page_log, out)``."""
    _arm_payload_faults(payload)
    faults.fire("parallel.worker")
    spec = payload["spec"]
    jobkey = spec["job"]
    job = _JOB_CACHE.get(jobkey)
    if job is None:
        if len(_JOB_CACHE) > 8:
            _JOB_CACHE.clear()
        job = _compile_worker_job(spec)
        _JOB_CACHE[jobkey] = job
    recorder = job.recorder
    recorder.take()  # defensive: never carry stale charges
    vids = _attach(payload["segment"])[payload["start"]:payload["stop"]]
    cols: list = [None] * job.nslots
    cols[job.slot] = vids
    cols, n = vectorized._apply_filters(job.filters, cols, len(vids))
    out = None
    if n:
        if job.agg_specs is not None:
            out = []
            for agg_spec in job.agg_specs:
                if agg_spec is None:
                    out.append(None)  # count(*) / count(var): n is enough
                    continue
                name, slot, col = agg_spec
                # _Aggregator.update's gather + presence mask, minus
                # the fold (the coordinator folds in serial order).
                avids = cols[slot]
                recorder.metrics.property_reads += n
                vectorized._charge_pages(recorder, "v", avids, dedup=False)
                present = col.present[avids]
                k = int(present.sum())
                if name == "count" or k == 0:
                    out.append((k, b""))
                else:
                    out.append((k, col.values[avids][present].tobytes()))
        else:
            out = list(zip(*(fn(cols, n) for fn in job.item_fns)))
    counters, page_log = recorder.take()
    return n, counters, page_log, out


# ----------------------------------------------------------------------
# Workload (b): morsel-parallel PageRank
# ----------------------------------------------------------------------
def _flat_undirected_edges(graph, vid_arr, inv):
    """Vectorized flattening of the frozen view's out-CSRs into
    undirected ``(src, dst)`` index arrays - both directions per edge,
    exactly the adjacency :func:`view.graph_pagerank` builds."""
    view = graph.freeze()
    srcs = []
    dsts = []
    for _sid, (offsets, neighbors, _eids) in view.iter_csr("out"):
        off = np.asarray(offsets, dtype=np.int64)
        nbr = np.asarray(neighbors, dtype=np.int64)
        counts = off[vid_arr + 1] - off[vid_arr]
        total = int(counts.sum())
        if total == 0:
            continue
        starts = off[vid_arr]
        cum = np.cumsum(counts)
        # Position j of the flattened neighbor list maps back into the
        # CSR at start-of-run + offset-within-run.
        pos = np.arange(total) + np.repeat(starts - (cum - counts), counts)
        s = np.repeat(inv[vid_arr], counts)
        d = inv[nbr[pos]]
        srcs.extend((s, d))
        dsts.extend((d, s))
    if not srcs:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(srcs), np.concatenate(dsts)


def _dst_partitions(s_dst, n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous destination-space ranges covering ``[0, n)`` with
    roughly equal edge counts, aligned to dst-run boundaries."""
    e = len(s_dst)
    cuts = [0]
    for w in range(1, workers):
        pos = (e * w) // workers
        dcut = int(s_dst[pos]) if pos < e else n
        cuts.append(min(max(dcut, cuts[-1]), n))
    cuts.append(n)
    return [(cuts[i], cuts[i + 1]) for i in range(workers)]


def parallel_pagerank(
    graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 100,
    workers: object = None,
    pool: WorkerPool | None = None,
) -> dict[int, float]:
    """PageRank over the undirected graph, morsel-parallel.

    Matches :func:`view.graph_pagerank` to floating-point tolerance
    (per-destination partial sums are reduced in a different order
    than the serial kernel's edge loop); iteration structure - teleport
    base, dangling-mass redistribution, L1 convergence test - is
    identical, with a barrier per iteration.  Falls back to the serial
    kernel below 2 workers or without numpy.
    """
    workers = resolve_parallelism(workers)
    if workers < 2 or not HAVE_NUMPY:
        from repro.graphdb.view import graph_pagerank

        return graph_pagerank(graph, damping, tol, max_iterations)
    vids = graph.vertex_ids()
    n = len(vids)
    if n == 0:
        return {}
    vid_arr = np.asarray(vids, dtype=np.int64)
    inv = np.full(int(vid_arr.max()) + 2, -1, dtype=np.int64)
    inv[vid_arr] = np.arange(n, dtype=np.int64)
    src, dst = _flat_undirected_edges(graph, vid_arr, inv)
    out_degree = np.bincount(src, minlength=n)
    dangling = out_degree == 0
    inv_degree = np.zeros(n, dtype=np.float64)
    nz = out_degree > 0
    inv_degree[nz] = 1.0 / out_degree[nz]
    order = np.argsort(dst, kind="stable")
    s_src = src[order]
    s_dst = dst[order]
    parts = _dst_partitions(s_dst, n, workers)
    edge_bounds = [
        (int(np.searchsorted(s_dst, lo)), int(np.searchsorted(s_dst, hi)))
        for lo, hi in parts
    ]

    pool = pool if pool is not None else get_pool(workers)
    pool.ensure_started()
    faults.fire("parallel.dispatch")
    worker_faults = _armed_worker_faults()
    job = pool.job_id()
    arena = pool.arena
    try:
        src_desc = arena.share(("pr", job, "src"), s_src)
        dst_desc = arena.share(("pr", job, "dst"), s_dst)
        inv_desc = arena.share(("pr", job, "invdeg"), inv_degree)
        rank_view, rank_desc = arena.create_buffer(
            ("pr", job, "rank"), (n,), np.float64
        )
        rank = np.full(n, 1.0 / n, dtype=np.float64)
        base_teleport = (1.0 - damping) / n
        for _iteration in range(max_iterations):
            rank_view[:] = rank
            dangling_mass = float(rank[dangling].sum())
            wanted = {}
            for w, ((d_lo, d_hi), (e_lo, e_hi)) in enumerate(
                zip(parts, edge_bounds)
            ):
                task_id = pool.submit("pagerank", {
                    "src": src_desc, "dst": dst_desc,
                    "invdeg": inv_desc, "rank": rank_desc,
                    "d_lo": d_lo, "d_hi": d_hi,
                    "e_lo": e_lo, "e_hi": e_hi,
                    "faults": worker_faults,
                })
                wanted[task_id] = w
                _MORSELS.inc()
            partials = _gather_all(pool, wanted)  # iteration barrier
            incoming = np.zeros(n, dtype=np.float64)
            for w, ((d_lo, d_hi), _) in enumerate(zip(parts, edge_bounds)):
                if d_hi > d_lo:
                    incoming[d_lo:d_hi] = np.frombuffer(
                        partials[w], dtype=np.float64
                    )
            new_rank = (
                base_teleport
                + damping * dangling_mass / n
                + damping * incoming
            )
            delta = float(np.abs(new_rank - rank).sum())
            rank = new_rank
            if delta < tol:
                break
        return dict(zip(vids, rank.tolist()))
    finally:
        arena.drop(
            lambda k: isinstance(k, tuple) and k[0] == "pr" and k[1] == job
        )


def _handle_pagerank(payload):
    """One destination-range partial: sum incoming shares."""
    _arm_payload_faults(payload)
    faults.fire("parallel.worker")
    e_lo, e_hi = payload["e_lo"], payload["e_hi"]
    d_lo, d_hi = payload["d_lo"], payload["d_hi"]
    part = np.zeros(max(d_hi - d_lo, 0), dtype=np.float64)
    if e_hi > e_lo:
        src = _attach(payload["src"])[e_lo:e_hi]
        dst = _attach(payload["dst"])[e_lo:e_hi]
        rank = _attach(payload["rank"])
        inv_degree = _attach(payload["invdeg"])
        np.add.at(part, dst - d_lo, rank[src] * inv_degree[src])
    return part.tobytes()


# ----------------------------------------------------------------------
# Workload (c): parallel statistics build
# ----------------------------------------------------------------------
def parallel_build_stats(graph, workers: object = None,
                         pool: WorkerPool | None = None):
    """A :meth:`GraphStatistics.build` scattered across the pool.

    Per-table property histograms and chunked edge-combination counts
    run in workers; ``Counter`` merges are order-independent, so the
    result compares equal to a serial build.  Numeric columns travel
    through shared memory; object columns (strings, lists) are
    pickled - they are the minority and histogramming them is the
    expensive part, not the copy.
    """
    from repro.graphdb.statistics import GraphStatistics, PropertyStats

    workers = resolve_parallelism(workers)
    if workers < 2 or not HAVE_NUMPY:
        return GraphStatistics.build(graph)
    stats = GraphStatistics()
    symbols = graph._symbols
    bump = GraphStatistics._bump
    pool = pool if pool is not None else get_pool(workers)
    pool.ensure_started()
    faults.fire("parallel.dispatch")
    worker_faults = _armed_worker_faults()
    job = pool.job_id()
    arena = pool.arena
    wanted: dict[int, object] = {}
    try:
        for tid, table in enumerate(graph._tables):
            live = table.live
            if live == 0:
                continue
            labels = table.labels
            stats.num_vertices += live
            for pair in GraphStatistics._pairs_of(labels):
                bump(stats._label_pairs, pair, live)
            for label in labels:
                stats.label_counts[label] = (
                    stats.label_counts.get(label, 0) + live
                )
            columns_payload = []
            for key_sid, column in table.columns.items():
                if column.kind in (KIND_INT, KIND_FLOAT):
                    data = (
                        "shm",
                        arena.share(
                            ("stats", job, tid, key_sid),
                            np.asarray(column.data),
                        ),
                        column.kind,
                    )
                else:
                    data = ("obj", list(column.data), column.kind)
                columns_payload.append((key_sid, data, bytes(column.mask)))
            if not columns_payload:
                continue
            task_id = pool.submit("stats_table", {
                "live": live,
                "nrows": len(table.vids),
                "vids": (
                    list(table.vids)
                    if live != len(table.vids) else None
                ),
                "columns": columns_payload,
                "faults": worker_faults,
            })
            wanted[task_id] = ("table", tid, tuple(labels))
            _MORSELS.inc()

        e_label = graph._e_label
        n_edges = len(e_label)
        edge_chunks = []
        if n_edges:
            lab_desc = arena.share(
                ("stats", job, "e_label"), np.asarray(e_label, dtype=np.int64)
            )
            src_desc = arena.share(
                ("stats", job, "e_src"), np.asarray(graph._e_src, dtype=np.int64)
            )
            dst_desc = arena.share(
                ("stats", job, "e_dst"), np.asarray(graph._e_dst, dtype=np.int64)
            )
            vtid_desc = arena.share(
                ("stats", job, "v_tid"), np.asarray(graph._v_tid, dtype=np.int64)
            )
            n_chunks = min(max(workers, 1), max(n_edges // 4096, 1))
            step = -(-n_edges // n_chunks)
            for ci, lo in enumerate(range(0, n_edges, step)):
                task_id = pool.submit("stats_edges", {
                    "label": lab_desc, "src": src_desc, "dst": dst_desc,
                    "v_tid": vtid_desc,
                    "lo": lo, "hi": min(lo + step, n_edges),
                    "faults": worker_faults,
                })
                wanted[task_id] = ("edges", ci)
                _MORSELS.inc()

        results = _gather_all(pool, wanted)

        from collections import Counter

        for key in sorted(k for k in results if k[0] == "table"):
            _kind, _tid, labels = key
            for key_sid, hist, unhashable, total in results[key]:
                if total == 0:
                    continue
                name = symbols.name(key_sid)
                for label in labels:
                    stat = stats.props.get((label, name))
                    if stat is None:
                        stat = stats.props[(label, name)] = PropertyStats()
                    stat.count += total
                    stat.unhashable += unhashable
                    stat_hist = stat.hist
                    for value, occurrences in hist.items():
                        stat_hist[value] = (
                            stat_hist.get(value, 0) + occurrences
                        )

        combos: Counter = Counter()
        for key, res in results.items():
            if key[0] != "edges":
                continue
            for combo, count in res:
                combos[combo] += count
        labelsets = graph._labelset_strs
        for (sid, src_tid, dst_tid), count in sorted(combos.items()):
            label = symbols.name(sid)
            src_labels = labelsets[src_tid]
            dst_labels = labelsets[dst_tid]
            stats.num_edges += count
            bump(stats.edge_label_counts, label, count)
            for src_label in src_labels:
                bump(stats._src, (label, src_label), count)
                bump(stats._src_total, src_label, count)
            for dst_label in dst_labels:
                bump(stats._dst, (label, dst_label), count)
                bump(stats._dst_total, dst_label, count)
            for src_label in src_labels:
                for dst_label in dst_labels:
                    bump(
                        stats._triples, (label, src_label, dst_label), count
                    )
        stats._reset_epoch_trigger()
        return stats
    finally:
        arena.drop(
            lambda k: isinstance(k, tuple) and k[0] == "stats" and k[1] == job
        )


class _TableStub:
    __slots__ = ("live", "vids")

    def __init__(self, live, vids):
        self.live = live
        self.vids = vids


class _ColumnStub:
    __slots__ = ("kind", "data", "mask")

    def __init__(self, kind, data, mask):
        self.kind = kind
        self.data = data
        self.mask = mask


def _handle_stats_table(payload):
    from repro.graphdb.statistics import _column_histogram

    _arm_payload_faults(payload)
    faults.fire("parallel.worker")
    nrows = payload["nrows"]
    vids = payload["vids"]
    table = _TableStub(
        payload["live"],
        vids if vids is not None else range(nrows),
    )
    out = []
    for key_sid, data_spec, mask in payload["columns"]:
        tag, data, kind = data_spec
        if tag == "shm":
            # tolist() restores plain int/float values so histogram
            # keys compare (and pickle) identically to a serial build.
            data = _attach(data).tolist()
        column = _ColumnStub(kind, data, bytearray(mask))
        hist, unhashable, total = _column_histogram(table, column)
        out.append((key_sid, hist, unhashable, total))
    return out


def _handle_stats_edges(payload):
    _arm_payload_faults(payload)
    faults.fire("parallel.worker")
    lo, hi = payload["lo"], payload["hi"]
    lab = _attach(payload["label"])[lo:hi]
    src = _attach(payload["src"])[lo:hi]
    dst = _attach(payload["dst"])[lo:hi]
    v_tid = _attach(payload["v_tid"])
    mask = lab >= 0  # tombstoned edges have negative label sids
    if not mask.any():
        return []
    combos = np.stack(
        (lab[mask], v_tid[src[mask]], v_tid[dst[mask]]), axis=1
    )
    uniq, counts = np.unique(combos, axis=0, return_counts=True)
    return [
        ((int(a), int(b), int(c)), int(k))
        for (a, b, c), k in zip(uniq.tolist(), counts.tolist())
    ]


_HANDLERS = {
    "scan": _handle_scan,
    "pagerank": _handle_pagerank,
    "stats_table": _handle_stats_table,
    "stats_edges": _handle_stats_edges,
}
