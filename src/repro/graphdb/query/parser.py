"""Recursive-descent parser for the Cypher subset.

Supported grammar (case-insensitive keywords)::

    query      := MATCH patterns (MATCH patterns)* [WHERE expr]
                  RETURN [DISTINCT] items [ORDER BY orders] [LIMIT n]
    patterns   := pattern (',' pattern)*
    pattern    := [ident '='] node (rel node)*
    node       := '(' [ident] (':' ident)*
                  ['{' ident ':' (literal | '$' ident) ... '}'] ')'
    rel        := '-' '[' body ']' ('->' | '-')  |  '<-' '[' body ']' '-'
    body       := [ident] [':' ident ('|' ident)*]
    expr       := or-expression over comparisons, IS [NOT] NULL,
                  CONTAINS, IN, NOT, parentheses; operands are
                  literals, '$' parameters, variables, property refs
                  and function calls
    items      := item (',' item)*;  item := expr [AS ident]

Functions are identifiers followed by '(' and may take DISTINCT:
``count(*)``, ``count(DISTINCT x)``, ``collect(x)``, ``size(...)``, etc.
"""

from __future__ import annotations

from repro.exceptions import QuerySyntaxError
from repro.graphdb.query.ast import (
    BoolOp,
    Comparison,
    Expr,
    FuncCall,
    Literal,
    NodePattern,
    NotOp,
    NullCheck,
    OrderItem,
    Parameter,
    PathPattern,
    PropertyRef,
    Query,
    RelPattern,
    ReturnItem,
    Star,
    Variable,
)
from repro.graphdb.query.lexer import Token, tokenize

#: Upper bound substituted for an open-ended ``*`` (keeps traversals
#: finite; Cypher leaves this unbounded).
_DEFAULT_MAX_HOPS = 8


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`Query` AST."""
    return _Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (handy in tests)."""
    parser = _Parser(tokenize(text))
    expr = parser._expression()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _accept_op(self, op: str) -> bool:
        if self._current.is_op(op):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise QuerySyntaxError(
                f"expected {op!r}, found {self._current.text!r}",
                self._current.position,
            )

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise QuerySyntaxError(
                f"expected {word.upper()}, found {self._current.text!r}",
                self._current.position,
            )

    def _expect_ident(self) -> str:
        if self._current.kind != "IDENT":
            raise QuerySyntaxError(
                f"expected identifier, found {self._current.text!r}",
                self._current.position,
            )
        return self._advance().text

    def _expect_name(self) -> str:
        """An identifier, also accepting keywords used as plain names.

        Property and label names such as ``desc`` or ``order`` collide
        with keywords; after ``.``/``:`` or inside a property map there
        is no ambiguity, so keywords are allowed there.
        """
        if self._current.kind in ("IDENT", "KEYWORD"):
            return self._advance().text
        raise QuerySyntaxError(
            f"expected name, found {self._current.text!r}",
            self._current.position,
        )

    def _expect_eof(self) -> None:
        if self._current.kind != "EOF":
            raise QuerySyntaxError(
                f"unexpected trailing input {self._current.text!r}",
                self._current.position,
            )

    # ------------------------------------------------------------------
    # Query structure
    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        patterns: list[PathPattern] = []
        self._expect_keyword("match")
        patterns.extend(self._patterns())
        while self._accept_keyword("match"):
            patterns.extend(self._patterns())
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        self._expect_keyword("return")
        distinct = self._accept_keyword("distinct")
        items = [self._return_item()]
        while self._accept_op(","):
            items.append(self._return_item())
        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise QuerySyntaxError(
                    "LIMIT expects an integer", token.position
                )
            limit = token.value
        self._expect_eof()
        return Query(
            patterns=tuple(patterns),
            return_items=tuple(items),
            where=where,
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _patterns(self) -> list[PathPattern]:
        patterns = [self._path_pattern()]
        while self._current.is_op(","):
            # A comma may start either another pattern or (in RETURN) the
            # caller handles it; inside MATCH it is always a pattern.
            self._advance()
            patterns.append(self._path_pattern())
        return patterns

    def _path_pattern(self) -> PathPattern:
        path_var = None
        if (
            self._current.kind == "IDENT"
            and self._tokens[self._pos + 1].is_op("=")
        ):
            path_var = self._advance().text
            self._advance()  # '='
        nodes = [self._node_pattern()]
        rels: list[RelPattern] = []
        while self._current.is_op("-") or self._current.is_op("<-"):
            rels.append(self._rel_pattern())
            nodes.append(self._node_pattern())
        return PathPattern(tuple(nodes), tuple(rels), path_var)

    def _node_pattern(self) -> NodePattern:
        self._expect_op("(")
        var = None
        if self._current.kind == "IDENT":
            var = self._advance().text
        labels: list[str] = []
        while self._accept_op(":"):
            labels.append(self._expect_name())
        props: list[tuple[str, Literal | Parameter]] = []
        if self._accept_op("{"):
            while not self._current.is_op("}"):
                name = self._expect_name()
                self._expect_op(":")
                if self._current.kind == "PARAM":
                    props.append((name, Parameter(self._advance().text)))
                else:
                    props.append((name, self._literal()))
                if not self._accept_op(","):
                    break
            self._expect_op("}")
        self._expect_op(")")
        return NodePattern(var, tuple(labels), tuple(props))

    def _rel_pattern(self) -> RelPattern:
        if self._accept_op("<-"):
            var, labels, hops = self._rel_body()
            self._expect_op("-")
            return RelPattern(var, labels, "in", *hops)
        self._expect_op("-")
        var, labels, hops = self._rel_body()
        if self._accept_op("->"):
            return RelPattern(var, labels, "out", *hops)
        self._expect_op("-")
        return RelPattern(var, labels, "any", *hops)

    def _rel_body(
        self,
    ) -> tuple[str | None, tuple[str, ...], tuple[int, int]]:
        var = None
        labels: list[str] = []
        hops = (1, 1)
        if self._accept_op("["):
            if self._current.kind == "IDENT":
                var = self._advance().text
            if self._accept_op(":"):
                labels.append(self._expect_name())
                while self._accept_op("|"):
                    labels.append(self._expect_name())
            if self._accept_op("*"):
                hops = self._hop_range()
            self._expect_op("]")
        return var, tuple(labels), hops

    def _hop_range(self) -> tuple[int, int]:
        """``*``, ``*n``, ``*n..m`` or ``*..m`` after the labels."""
        low = 1
        high = None
        if self._current.kind == "NUMBER":
            low = int(self._advance().value)
            high = low
        if self._current.is_op("."):
            self._advance()
            self._expect_op(".")
            if self._current.kind == "NUMBER":
                high = int(self._advance().value)
            else:
                raise QuerySyntaxError(
                    "variable-length upper bound required",
                    self._current.position,
                )
        if high is None:
            high = _DEFAULT_MAX_HOPS
        if low < 0 or high < low:
            raise QuerySyntaxError(
                f"invalid hop range *{low}..{high}",
                self._current.position,
            )
        return low, high

    def _return_item(self) -> ReturnItem:
        expr = self._expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        return ReturnItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        elif self._accept_keyword("asc"):
            descending = False
        return OrderItem(expr, descending)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept_keyword("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._not_expr()]
        while self._accept_keyword("and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def _not_expr(self) -> Expr:
        if self._accept_keyword("not"):
            return NotOp(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        lhs = self._operand()
        if self._current.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return NullCheck(lhs, negated)
        for op in ("=", "<>", "<=", ">=", "<", ">"):
            if self._current.is_op(op):
                self._advance()
                return Comparison(lhs, op, self._operand())
        if self._current.is_keyword("contains"):
            self._advance()
            return Comparison(lhs, "contains", self._operand())
        if self._current.is_keyword("in"):
            self._advance()
            return Comparison(lhs, "in", self._operand())
        return lhs

    def _operand(self) -> Expr:
        token = self._current
        if token.is_op("("):
            self._advance()
            inner = self._expression()
            self._expect_op(")")
            return inner
        if token.is_op("["):
            self._advance()
            values: list[object] = []
            while not self._current.is_op("]"):
                literal = self._literal()
                values.append(literal.value)
                if not self._accept_op(","):
                    break
            self._expect_op("]")
            return Literal(values)
        if token.is_op("-"):
            self._advance()
            number = self._advance()
            if number.kind != "NUMBER":
                raise QuerySyntaxError(
                    "expected number after unary minus", number.position
                )
            return Literal(-number.value)
        if token.kind == "NUMBER" or token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if token.kind == "PARAM":
            self._advance()
            return Parameter(token.text)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.kind == "IDENT":
            name = self._advance().text
            if self._current.is_op("("):
                return self._func_call(name)
            if self._accept_op("."):
                prop = self._expect_name()
                return PropertyRef(name, prop)
            return Variable(name)
        raise QuerySyntaxError(
            f"unexpected token {token.text!r}", token.position
        )

    def _func_call(self, name: str) -> FuncCall:
        self._expect_op("(")
        distinct = self._accept_keyword("distinct")
        args: list[Expr] = []
        if self._accept_op("*"):
            args.append(Star())
        elif not self._current.is_op(")"):
            args.append(self._expression())
            while self._accept_op(","):
                args.append(self._expression())
        self._expect_op(")")
        return FuncCall(name.lower(), tuple(args), distinct=distinct)

    def _literal(self) -> Literal:
        token = self._advance()
        if token.kind in ("NUMBER", "STRING"):
            return Literal(token.value)
        if token.is_keyword("true"):
            return Literal(True)
        if token.is_keyword("false"):
            return Literal(False)
        if token.is_keyword("null"):
            return Literal(None)
        if token.is_op("-"):
            number = self._advance()
            if number.kind != "NUMBER":
                raise QuerySyntaxError(
                    "expected number after unary minus", number.position
                )
            return Literal(-number.value)
        raise QuerySyntaxError(
            f"expected literal, found {token.text!r}", token.position
        )
