"""Tokenizer for the Cypher subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QuerySyntaxError

KEYWORDS = frozenset(
    {
        "match", "where", "return", "as", "and", "or", "not", "distinct",
        "order", "by", "limit", "asc", "desc", "is", "null", "in",
        "contains", "true", "false",
    }
)

#: token kinds: KEYWORD IDENT STRING NUMBER PARAM OP EOF
TWO_CHAR_OPS = ("<>", "<=", ">=", "->", "<-")
SINGLE_CHAR_OPS = "()[]{}:,.=<>-+|*/"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        # ``value`` holds the lower-cased form; ``text`` keeps the
        # original spelling so keywords can double as plain names.
        return self.kind == "KEYWORD" and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind == "OP" and self.text == op


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises QuerySyntaxError on unknown characters."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "/" and text[i:i + 2] == "//":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "`":
            end = text.find("`", i + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated backtick name", i)
            name = text[i + 1:end]
            tokens.append(Token("IDENT", name, name, i))
            i = end + 1
            continue
        if ch in "'\"":
            end = i + 1
            chunks: list[str] = []
            while end < n and text[end] != ch:
                if text[end] == "\\" and end + 1 < n:
                    chunks.append(text[end + 1])
                    end += 2
                else:
                    chunks.append(text[end])
                    end += 1
            if end >= n:
                raise QuerySyntaxError("unterminated string literal", i)
            value = "".join(chunks)
            tokens.append(Token("STRING", value, value, i))
            i = end + 1
            continue
        if ch == "$":
            # ``$name`` parameter placeholder (value bound at run time).
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            name = text[start + 1:i]
            if not name or name[0].isdigit():
                raise QuerySyntaxError(
                    "expected parameter name after '$'", start
                )
            tokens.append(Token("PARAM", name, name, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            # A decimal point only when followed by a digit ("1..3" in
            # variable-length paths must stay three tokens).
            if (
                i + 1 < n and text[i] == "." and text[i + 1].isdigit()
            ):
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            raw = text[start:i]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("NUMBER", raw, value, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("KEYWORD", word, lowered, start))
            else:
                tokens.append(Token("IDENT", word, word, start))
            continue
        two = text[i:i + 2]
        if two in TWO_CHAR_OPS:
            tokens.append(Token("OP", two, two, i))
            i += 2
            continue
        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token("OP", ch, ch, i))
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", None, n))
    return tokens
