"""Query executor: streaming pattern matching, filtering, aggregation.

The match/filter/project pipeline is a chain of generators over
fixed-slot binding tuples (one slot per pattern variable, allocated by
the planner), so no intermediate binding list is materialized and a
``LIMIT`` without aggregation short-circuits the whole pipeline: scans
and expands simply stop being pulled.  WHERE conjuncts arrive already
pushed down onto plan steps (see :mod:`~repro.graphdb.query.planner`),
and every expression is compiled once per query into a closure instead
of being interpreted per row.  ``ORDER BY`` + ``LIMIT`` keeps a bounded
heap (top-k) instead of sorting the full result.

All graph access flows through the
:class:`~repro.graphdb.session.GraphSession`, which records the work
counters the latency model consumes.

Aggregation follows Cypher semantics: when any return item contains an
aggregate function, the non-aggregated items become grouping keys;
``size(collect(x))`` style nesting is evaluated inside-out at group
level.  Aggregation (and full-sort ORDER BY) are the only pipeline
breakers - everything upstream of them still streams.

Planning is cost-based by default: the planner prices candidate
orderings against the graph's :class:`~repro.graphdb.statistics.
GraphStatistics` (built lazily on first query, maintained
incrementally afterwards), and plans built from query *text* are
cached in the statistics object's LRU plan cache keyed on
``(query text, stats epoch)``, so repeated queries skip parsing and
planning until enough mutations accumulate.  Construct the executor
with ``cost_based=False`` to force the legacy syntactic ordering.
:meth:`Executor.explain` renders the chosen plan; with
``analyze=True`` it also runs the query and pairs each step's
estimated row count with the rows it actually produced.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable, Iterator

from repro.exceptions import (
    ParameterError,
    QueryError,
    QueryTimeoutError,
    ResourceLimitError,
)
from repro.graphdb import observe
from repro.graphdb.metrics import ExecutionMetrics
from repro.graphdb.observe.trace import Trace
from repro.graphdb.query.ast import (
    AGGREGATE_FUNCTIONS,
    BoolOp,
    Comparison,
    Expr,
    FuncCall,
    Literal,
    NotOp,
    NullCheck,
    Parameter,
    PropertyRef,
    Query,
    ReturnItem,
    Star,
    Variable,
    contains_aggregate,
    parameters_used,
)
from repro.graphdb.query.functions import (
    apply_aggregate,
    apply_scalar,
    compare,
)
from repro.graphdb.query.parser import parse_query
from repro.graphdb.query.planner import (
    ExpandStep,
    JoinCheckStep,
    NodeSpec,
    Plan,
    ScanStep,
    build_plan,
)
from repro.graphdb.session import GraphSession

_GUARDRAIL_TRIPS = observe.REGISTRY.labeled_counter(
    "repro_guardrail_trips_total",
    "kind",
    "Queries stopped by a resource guardrail (timeout, max_rows).",
)
_QUERY_PATHS = observe.REGISTRY.labeled_counter(
    "repro_query_path_total",
    "path",
    "Query executions per pipeline path (parallel, vectorized, or "
    "tuple).",
)


@dataclass(frozen=True)
class VertexBinding:
    vid: int


@dataclass(frozen=True)
class EdgeBinding:
    eid: int


#: A binding is a flat tuple indexed by the planner's slot allocation.
Binding = tuple


@dataclass
class QueryResult:
    columns: list[str]
    rows: list[tuple]
    metrics: ExecutionMetrics
    latency_ms: float

    def single_value(self) -> object:
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError(
                f"expected a single value, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError(f"no column {name!r}") from None
        return [row[index] for row in self.rows]


RowFn = Callable[[Binding], object]


class _Evaluator:
    """Compiles expressions into closures over slot-tuple bindings.

    Binding slots hold raw vertex/edge ids; the planner records which
    kind each slot carries, so compiled closures read properties or
    wrap ids into :class:`VertexBinding` / :class:`EdgeBinding` output
    values without any per-row type dispatch.
    """

    def __init__(
        self,
        session: GraphSession,
        plan: Plan,
        params: dict[str, object] | None = None,
    ):
        self.session = session
        self.slots = plan.slots
        self.kinds = plan.slot_kinds
        self.params = params or {}

    def compile(self, expr: Expr) -> RowFn:
        if isinstance(expr, Literal):
            value = expr.value
            return lambda b: value
        if isinstance(expr, Parameter):
            # Parameters are fixed for one execution: capture the
            # bound value, not a per-row dict probe.
            value = _resolve_value(expr, self.params)
            return lambda b: value
        if isinstance(expr, Star):
            return lambda b: 1
        if isinstance(expr, Variable):
            slot = self.slots.get(expr.name)
            if slot is None:
                return _unbound(expr.name)
            if self.kinds[expr.name] == "edge":
                return lambda b: EdgeBinding(b[slot])
            return lambda b: VertexBinding(b[slot])
        if isinstance(expr, PropertyRef):
            slot = self.slots.get(expr.var)
            if slot is None:
                return _unbound(expr.var)
            prop = expr.prop
            if self.kinds[expr.var] == "edge":
                read_edge = self.session.read_edge_property
                return lambda b: read_edge(b[slot], prop)
            # Fused column reader: symbol id and column map resolved
            # once per compilation, one call per row after that.
            read_vertex = self.session.property_reader(prop)
            return lambda b: read_vertex(b[slot])
        if isinstance(expr, FuncCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                name = expr.name

                def misplaced(b):
                    raise QueryError(
                        f"aggregate {name}() outside aggregation context"
                    )

                return misplaced
            arg_fns = [self.compile(arg) for arg in expr.args]
            name = expr.name
            return lambda b: apply_scalar(name, [fn(b) for fn in arg_fns])
        if isinstance(expr, Comparison):
            lhs, rhs, op = (
                self.compile(expr.lhs), self.compile(expr.rhs), expr.op
            )
            return lambda b: compare(op, lhs(b), rhs(b))
        if isinstance(expr, NullCheck):
            inner = self.compile(expr.expr)
            if expr.negated:
                return lambda b: inner(b) is not None
            return lambda b: inner(b) is None
        if isinstance(expr, BoolOp):
            fns = [self.compile(op) for op in expr.operands]
            if expr.op == "and":
                return lambda b: all(fn(b) for fn in fns)
            return lambda b: any(fn(b) for fn in fns)
        if isinstance(expr, NotOp):
            inner = self.compile(expr.operand)
            return lambda b: not inner(b)
        raise QueryError(f"cannot evaluate expression {expr!r}")

    def compile_group(self, expr: Expr) -> Callable[[list], object]:
        """Compile a group-level (aggregating) expression."""
        if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            if not expr.args:
                raise QueryError(f"{expr.name}() needs an argument")
            arg_fn = self.compile(expr.args[0])
            name, distinct, flatten = expr.name, expr.distinct, expr.flatten
            return lambda group: apply_aggregate(
                name, [arg_fn(b) for b in group],
                distinct=distinct, flatten=flatten,
            )
        if isinstance(expr, FuncCall):
            arg_fns = [self.compile_group(arg) for arg in expr.args]
            name = expr.name
            return lambda group: apply_scalar(
                name, [fn(group) for fn in arg_fns]
            )
        if not contains_aggregate(expr):
            row_fn = self.compile(expr)
            return lambda group: row_fn(group[0]) if group else None
        raise QueryError(
            f"unsupported aggregate nesting in {expr!r}"
        )  # pragma: no cover - parser produces FuncCall nests only


def _unbound(name: str) -> RowFn:
    def fn(b):
        raise QueryError(f"unbound variable {name!r}")

    return fn


def _resolve_value(value: object, params: dict[str, object]) -> object:
    """A plan-time value with any ``$parameter`` bound for this run."""
    if isinstance(value, Parameter):
        try:
            return params[value.name]
        except KeyError:
            raise ParameterError(
                f"missing query parameter ${value.name}"
            ) from None
    return value


def _resolve_props(
    props: tuple[tuple[str, object], ...], params: dict[str, object]
) -> tuple[tuple[str, object], ...] | None:
    """Bind folded property constraints; ``None`` = unsatisfiable.

    A ``$parameter`` bound to ``None`` makes the equality behave like
    ``= null`` - which matches nothing - so the whole constraint set
    becomes unsatisfiable rather than "property is absent".  A
    *literal* ``null`` in a node property map keeps its historical
    matches-absent semantics and passes through untouched.
    """
    if not props:
        return props
    resolved = []
    for name, value in props:
        if isinstance(value, Parameter):
            value = _resolve_value(value, params)
            if value is None:
                return None
        resolved.append((name, value))
    return tuple(resolved)


@lru_cache(maxsize=256)
def _parameters_of(query: Query) -> frozenset[str]:
    return frozenset(parameters_used(query))


def _validate_params(
    query: Query, parameters: dict[str, object] | None
) -> dict[str, object]:
    """The bound-parameter dict; every ``$name`` used must be present."""
    params = dict(parameters) if parameters else {}
    try:
        # Memoized per AST: the hot parameterized path re-executes the
        # same (cached) query thousands of times and must not re-walk
        # its tree per run.
        required = _parameters_of(query)
    except TypeError:  # AST embeds an unhashable (list) literal
        required = parameters_used(query)
    missing = required - params.keys()
    if missing:
        names = ", ".join(f"${name}" for name in sorted(missing))
        raise ParameterError(f"missing query parameter(s): {names}")
    return params


class ExecutionGuard:
    """Per-execution resource budget: wall-clock deadline + row cap.

    The deadline is checked inside the streaming pipeline (once per
    binding pulled through the match stream), so a runaway traversal or
    an aggregation draining millions of bindings is interrupted, not
    just a slow consumer.  The row cap counts *emitted* result rows and
    raises when exceeded - it is a guardrail, not a silent ``LIMIT``:
    crossing it is an error the caller must see.
    """

    __slots__ = ("deadline", "timeout", "max_rows")

    def __init__(
        self,
        timeout: float | None = None,
        max_rows: int | None = None,
    ):
        if timeout is not None and timeout < 0:
            raise QueryError(f"timeout must be >= 0, got {timeout!r}")
        if max_rows is not None and max_rows < 0:
            raise QueryError(f"max_rows must be >= 0, got {max_rows!r}")
        self.timeout = timeout
        self.deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        self.max_rows = max_rows

    @property
    def armed(self) -> bool:
        return self.deadline is not None or self.max_rows is not None

    def check_deadline(self) -> None:
        if (
            self.deadline is not None
            and time.monotonic() > self.deadline
        ):
            _GUARDRAIL_TRIPS.inc("timeout")
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout}s timeout"
            )


def _guarded_bindings(
    stream: Iterable[Binding], guard: ExecutionGuard
) -> Iterator[Binding]:
    check = guard.check_deadline
    for binding in stream:
        check()
        yield binding


def _guarded_rows(
    rows: Iterable[tuple], guard: ExecutionGuard
) -> Iterator[tuple]:
    check = guard.check_deadline
    max_rows = guard.max_rows
    emitted = 0
    for row in rows:
        check()
        if max_rows is not None:
            emitted += 1
            if emitted > max_rows:
                _GUARDRAIL_TRIPS.inc("max_rows")
                raise ResourceLimitError(
                    f"query produced more than max_rows={max_rows} "
                    "row(s)"
                )
        yield row


def _passes(filters: list[RowFn], binding: Binding) -> bool:
    for fn in filters:
        if not fn(binding):
            return False
    return True


def _counted(
    stream: Iterable[Binding], counts: list[int], index: int
) -> Iterator[Binding]:
    """Count the bindings one step yields (EXPLAIN ANALYZE probe)."""
    for binding in stream:
        counts[index] += 1
        yield binding


#: Traced steps time their first pulls exactly, then 1 in every
#: ``_TRACE_SAMPLE_STRIDE`` (scaled back up) - small traces stay
#: exact while large scans don't pay two clock reads per row.
_TRACE_EXACT_PULLS = 16
_TRACE_SAMPLE_STRIDE = 16


def _timed_counted(
    stream: Iterable[Binding],
    counts: list[int],
    times: list[float],
    index: int,
) -> Iterator[Binding]:
    """The tracing variant of :func:`_counted`: same binding counts
    (one source of truth for trace spans *and* EXPLAIN ANALYZE), plus
    the inclusive wall time spent pulling this step's generator (which
    contains all upstream work - the iterator-model profile).  Past
    the first ``_TRACE_EXACT_PULLS`` pulls the clock is sampled (1 in
    ``_TRACE_SAMPLE_STRIDE``, scaled), so long streams pay the
    tracing budget per *sample*, not per row.  Only installed when a
    query runs with ``trace=True``; untraced executions never pay the
    per-binding clock reads."""
    perf = time.perf_counter
    it = iter(stream)
    exact = _TRACE_EXACT_PULLS
    stride = _TRACE_SAMPLE_STRIDE
    until_sample = 1
    while True:
        if exact > 0:
            exact -= 1
            started = perf()
            try:
                binding = next(it)
            except StopIteration:
                times[index] += perf() - started
                return
            times[index] += perf() - started
        else:
            until_sample -= 1
            if until_sample <= 0:
                until_sample = stride
                started = perf()
                try:
                    binding = next(it)
                except StopIteration:
                    times[index] += perf() - started
                    return
                times[index] += (perf() - started) * stride
            else:
                try:
                    binding = next(it)
                except StopIteration:
                    return
        counts[index] += 1
        yield binding


class Executor:
    """Executes parsed queries against one instrumented session.

    ``cost_based=False`` disables statistics-driven planning (and the
    plan cache) and falls back to the legacy syntactic ordering - the
    baseline the planner benchmarks compare against.
    ``vectorize=False`` pins every execution to the tuple-at-a-time
    generator pipeline; by default, plans the planner marked
    ``batchable`` run through the batch pipeline in
    :mod:`~repro.graphdb.query.vectorized` when the query's values
    also qualify, falling back per execution otherwise.
    """

    def __init__(
        self,
        session: GraphSession,
        cost_based: bool = True,
        vectorize: bool = True,
        parallelism: int | None = None,
        parallel_threshold: int | None = None,
    ):
        self.session = session
        self.cost_based = cost_based
        self.vectorize = vectorize
        # Lazy import: parallel -> vectorized -> executor would cycle
        # at module load; by __init__ time this module is complete.
        from repro.graphdb.query.parallel import (
            resolve_parallelism,
            resolve_threshold,
        )

        self.parallelism = resolve_parallelism(parallelism)
        self.parallel_threshold = resolve_threshold(parallel_threshold)

    def run(
        self,
        query: Query | str,
        parameters: dict[str, object] | None = None,
    ) -> QueryResult:
        query, plan = self._prepare(query)
        return self._execute(query, plan, parameters)

    def stream(
        self,
        query: Query | str,
        parameters: dict[str, object] | None = None,
        step_counts: list[int] | None = None,
        guard: ExecutionGuard | None = None,
        trace: Trace | None = None,
        report: object | None = None,
    ) -> tuple[Query, "Plan", list[str], Iterator[tuple]]:
        """Lazily execute; returns ``(query, plan, columns, rows)``.

        The row iterator pulls the match pipeline on demand, so a
        consumer that stops early (``LIMIT``-free point lookups, a
        driver cursor's ``single()``) never materializes the full
        result.  Session metrics accumulate until the caller collects
        them (see :meth:`~repro.graphdb.session.GraphSession.
        reset_metrics`); the driver's ``Result.consume()`` does this.
        ``step_counts`` (a zeroed list, one slot per plan step) makes
        the pipeline count each step's produced bindings, which
        ``EXPLAIN ANALYZE``-style summaries render as actual rows.
        ``guard`` imposes a deadline checked per binding inside the
        pipeline and a cap on emitted rows (see
        :class:`ExecutionGuard`).  ``trace`` records parse/plan phase
        spans and switches the pipeline to per-step inclusive timing
        (the driver settles the trace's operator spans from the same
        ``step_counts`` EXPLAIN ANALYZE uses).  ``report`` (a
        :class:`~repro.graphdb.query.vectorized.ExecutionReport`)
        receives which pipeline path this execution took and why.
        """
        query, plan = self._prepare(query, trace)
        if step_counts is not None and not step_counts:
            step_counts.extend([0] * len(plan.steps))
        if trace is not None:
            trace.step_times = [0.0] * len(plan.steps)
            trace.begin_execute()
        columns, rows = self._start(
            query,
            plan,
            parameters,
            step_counts,
            guard,
            step_times=trace.step_times if trace is not None else None,
            report=report,
        )
        return query, plan, columns, rows

    def _prepare(
        self, query: Query | str, trace: Trace | None = None
    ) -> tuple[Query, Plan]:
        """Parse and plan, consulting the per-graph plan cache.

        The cache key is the query text, or - AST nodes are frozen
        dataclasses - the :class:`Query` itself; the one unhashable
        case (a list literal embedded in an expression) is planned
        afresh.  The rewriter's pre-parsed OPT queries therefore cache
        just like text does.  With ``trace``, parse and plan each get
        a phase span; a cache hit collapses them into one instant
        ``plan`` span tagged ``cached``.
        """
        if trace is not None:
            return self._prepare_traced(query, trace)
        graph = self.session.graph
        if not self.cost_based:
            if isinstance(query, str):
                query = parse_query(query)
            return query, build_plan(query, graph, cost_based=False)
        stats = graph.statistics()
        key: Query | str | None = query
        try:
            hash(key)
        except TypeError:  # AST embeds an unhashable (list) literal
            key = None
        cached = (
            stats.plan_cache.get(key, stats.epoch)
            if key is not None
            else None
        )
        if cached is not None:
            return cached
        parsed = parse_query(query) if isinstance(query, str) else query
        plan = build_plan(parsed, graph, statistics=stats)
        if key is not None:
            stats.plan_cache.put(key, stats.epoch, (parsed, plan))
        return parsed, plan

    def _prepare_traced(
        self, query: Query | str, trace: Trace
    ) -> tuple[Query, Plan]:
        """:meth:`_prepare` with parse/plan phase spans recorded."""
        graph = self.session.graph
        if not self.cost_based:
            if isinstance(query, str):
                with trace.span("parse"):
                    query = parse_query(query)
            with trace.span("plan"):
                return query, build_plan(query, graph, cost_based=False)
        stats = graph.statistics()
        key: Query | str | None = query
        try:
            hash(key)
        except TypeError:
            key = None
        cached = (
            stats.plan_cache.get(key, stats.epoch)
            if key is not None
            else None
        )
        if cached is not None:
            span = trace.begin("plan").finish()
            span.attrs["cached"] = True
            return cached
        if isinstance(query, str):
            with trace.span("parse"):
                parsed = parse_query(query)
        else:
            parsed = query
        with trace.span("plan"):
            plan = build_plan(parsed, graph, statistics=stats)
        if key is not None:
            stats.plan_cache.put(key, stats.epoch, (parsed, plan))
        return parsed, plan

    def _start(
        self,
        query: Query,
        plan: Plan,
        parameters: dict[str, object] | None,
        step_counts: list[int] | None = None,
        guard: ExecutionGuard | None = None,
        step_times: list[float] | None = None,
        report: object | None = None,
    ) -> tuple[list[str], Iterator[tuple]]:
        """Compile one execution: ``(columns, lazy row iterator)``."""
        params = _validate_params(query, parameters)
        rows = None
        path = "vectorized"
        if self.vectorize and plan.batchable:
            from repro.graphdb.query import vectorized

            pipeline = None
            if self.parallelism > 1:
                from repro.graphdb.query import parallel

                pipeline = parallel.build_parallel_pipeline(
                    query, plan, self.session, params,
                    self.parallelism,
                    guard=guard, step_counts=step_counts,
                    step_times=step_times, report=report,
                    threshold=self.parallel_threshold,
                )
                if pipeline is not None:
                    path = "parallel"
            if pipeline is None:
                pipeline = vectorized.build_pipeline(
                    query, plan, self.session, params,
                    guard=guard, step_counts=step_counts,
                    step_times=step_times, report=report,
                )
            if pipeline is not None:
                columns, rows = pipeline
        elif report is not None:
            report.reason = "plan" if self.vectorize else "disabled"
        if rows is None:
            _QUERY_PATHS.inc("tuple")
            evaluator = _Evaluator(self.session, plan, params)
            stream = self._match_stream(
                plan, evaluator, step_counts, step_times
            )
            if guard is not None and guard.deadline is not None:
                # Checked per binding *before* projection, so pipeline
                # breakers (aggregation, full-sort ORDER BY) that drain
                # the match stream eagerly still honor the deadline.
                stream = _guarded_bindings(stream, guard)
            columns, rows = self._project(query, stream, evaluator)
        else:
            _QUERY_PATHS.inc(path)
        if query.distinct:
            rows = _dedupe(rows)
        if query.order_by:
            rows = self._order(query, columns, rows)
        elif query.limit is not None:
            rows = itertools.islice(rows, query.limit)
        if guard is not None and guard.armed:
            rows = _guarded_rows(rows, guard)
        return columns, iter(rows)

    def _execute(
        self,
        query: Query,
        plan: Plan,
        parameters: dict[str, object] | None = None,
        step_counts: list[int] | None = None,
        report: object | None = None,
    ) -> QueryResult:
        columns, row_iter = self._start(
            query, plan, parameters, step_counts, report=report
        )
        rows = list(row_iter)
        metrics = self.session.reset_metrics()
        metrics.rows = len(rows)
        metrics.queries = 1
        latency = self.session.profile.latency_ms(metrics)
        return QueryResult(columns, rows, metrics, latency)

    def explain(
        self,
        query: Query | str,
        analyze: bool = False,
        parameters: dict[str, object] | None = None,
    ) -> str:
        """Render the plan (steps, access paths, pushed predicates).

        ``analyze=True`` additionally *executes* the query, counting
        the bindings each step produced, and renders estimated vs
        actual rows per step (``EXPLAIN ANALYZE``).  Short-circuiting
        still applies: under ``LIMIT``, actual counts reflect the rows
        the pipeline really pulled, not the full match.  Parameterized
        queries EXPLAIN without bindings; ANALYZE needs ``parameters``
        because it runs the query.
        """
        query, plan = self._prepare(query)
        from repro.graphdb.query import vectorized

        if not analyze:
            mode = (
                vectorized.static_mode(query, plan, self.session.graph)
                if self.vectorize else "tuple"
            )
            return plan.describe(mode=mode)
        counts = [0] * len(plan.steps)
        report = vectorized.ExecutionReport()
        if not self.vectorize:
            report.reason = "disabled"
        self._execute(
            query, plan, parameters, step_counts=counts, report=report
        )
        return plan.describe(actual=counts, mode=report.mode)

    # ------------------------------------------------------------------
    # Pattern matching (generator pipeline)
    # ------------------------------------------------------------------
    def _match_stream(
        self,
        plan: Plan,
        evaluator: _Evaluator,
        step_counts: list[int] | None = None,
        step_times: list[float] | None = None,
    ) -> Iterator[Binding]:
        params = evaluator.params
        stream: Iterable[Binding] = ((),)
        for i, step in enumerate(plan.steps):
            filters = [evaluator.compile(f) for f in step.filters]
            if isinstance(step, ScanStep):
                stream = self._scan_stream(step, filters, stream, params)
            elif isinstance(step, ExpandStep):
                spec = plan.node_specs[step.to_var]
                stream = self._expand_stream(
                    step, spec, filters, stream, params
                )
            else:
                stream = self._join_stream(step, filters, stream)
            if step_times is not None and step_counts is not None:
                stream = _timed_counted(stream, step_counts, step_times, i)
            elif step_counts is not None:
                stream = _counted(stream, step_counts, i)
        return iter(stream)

    def _candidates(
        self, step: ScanStep, access: str, access_value: object
    ) -> list[int]:
        if access == "index":
            return self.session.index_lookup(
                step.access_label, step.access_prop, access_value
            )
        if access == "label":
            return self.session.label_scan(step.access_label)
        return self.session.graph.vertex_ids()

    def _scan_stream(
        self,
        step: ScanStep,
        filters: list[RowFn],
        source: Iterable[Binding],
        params: dict[str, object],
    ) -> Iterator[Binding]:
        labels = frozenset(step.check_labels) if step.check_labels else None
        props = _resolve_props(step.check_props, params)
        if props is None:
            return  # a $param bound to null: nothing can match
        access = step.access
        access_value = step.access_value
        if access == "index":
            access_value = _resolve_value(access_value, params)
            if access_value is None:
                return  # `= null` matches nothing
            try:
                hash(access_value)
            except TypeError:
                # An unhashable binding (a list) cannot key the index
                # buckets, but equality against stored values is still
                # well-defined: degrade to the label scan with the
                # lookup as a residual check - plan choice must never
                # change query semantics.
                access = "label"
                props = props + ((step.access_prop, access_value),)
        needs_check = labels is not None or bool(props)
        # Label/all scans with residual checks stream through the
        # session's columnar fast path: per-table label subsetting and
        # a zip over the checked property's column, instead of a
        # per-vertex accept probe.  Index scans keep the classic path
        # (their candidate set is already tiny).
        columnar = needs_check and access in ("label", "all")
        accept = self.session.accept_vertex
        matched: list[int] | None = None
        for binding in source:
            if matched is None:
                # First pass streams candidates lazily (so LIMIT can cut
                # the scan short) while memoizing accepted vertices for
                # any later cartesian-product passes.
                matched = []
                if columnar:
                    for vid in self.session.scan_rows(
                        step.access_label, labels, props
                    ):
                        matched.append(vid)
                        extended = binding + (vid,)
                        if not filters or _passes(filters, extended):
                            yield extended
                    continue
                for vid in self._candidates(step, access, access_value):
                    if needs_check and not accept(vid, labels, props):
                        continue
                    matched.append(vid)
                    extended = binding + (vid,)
                    if not filters or _passes(filters, extended):
                        yield extended
            else:
                for vid in matched:
                    extended = binding + (vid,)
                    if not filters or _passes(filters, extended):
                        yield extended

    def _expand_stream(
        self,
        step: ExpandStep,
        spec: NodeSpec,
        filters: list[RowFn],
        source: Iterable[Binding],
        params: dict[str, object],
    ) -> Iterator[Binding]:
        labels = frozenset(spec.labels) if spec.labels else None
        props = _resolve_props(tuple(spec.props.items()), params)
        if props is None:
            return  # a $param bound to null: nothing can match
        needs_check = labels is not None or bool(props)
        from_slot = step.from_slot
        bind_rel = step.rel_slot is not None
        edge_spec = step.edge
        plain = edge_spec.is_plain_hop
        expand_pairs = self.session.expand_pairs
        accept = self.session.accept_vertex
        for binding in source:
            vid = binding[from_slot]
            if plain:
                pairs = expand_pairs(
                    vid, edge_spec.labels, step.walk_direction
                )
            else:
                pairs = self._expand_paths(
                    vid, edge_spec.labels, step.walk_direction,
                    edge_spec.min_hops, edge_spec.max_hops,
                )
            for eid, neighbor in pairs:
                if needs_check and not accept(neighbor, labels, props):
                    continue
                if bind_rel:
                    extended = binding + (neighbor, eid)
                else:
                    extended = binding + (neighbor,)
                if not filters or _passes(filters, extended):
                    yield extended

    def _join_stream(
        self,
        step: JoinCheckStep,
        filters: list[RowFn],
        source: Iterable[Binding],
    ) -> Iterator[Binding]:
        edge_spec = step.edge
        plain = edge_spec.is_plain_hop
        for binding in source:
            src_vid = binding[step.src_slot]
            dst_vid = binding[step.dst_slot]
            if plain:
                # O(1) endpoint-pair probe instead of an adjacency scan.
                matched_eid = self.session.edge_between(
                    src_vid, dst_vid, edge_spec.labels, edge_spec.direction
                )
            else:
                matched_eid = None
                for eid, endpoint in self._expand_paths(
                    src_vid, edge_spec.labels, edge_spec.direction,
                    edge_spec.min_hops, edge_spec.max_hops,
                ):
                    if endpoint == dst_vid:
                        matched_eid = eid
                        break
            if matched_eid is None:
                continue
            if step.rel_slot is not None:
                extended = binding + (matched_eid,)
            else:
                extended = binding
            if not filters or _passes(filters, extended):
                yield extended

    def _expand_paths(
        self,
        vid: int,
        labels: tuple[str, ...],
        direction: str,
        min_hops: int,
        max_hops: int,
    ) -> list[tuple[int, int]]:
        """Variable-length (eid, endpoint) pairs per Cypher path rules.

        Each distinct path yields one result whose ``eid`` is the last
        edge taken; relationships never repeat within one path.
        """
        results: list[tuple[int, int]] = []
        if min_hops == 0:
            results.append((-1, vid))
        # DFS over paths; Cypher forbids reusing a relationship within
        # one path but allows revisiting vertices.
        stack: list[tuple[int, int, frozenset[int]]] = [
            (vid, 0, frozenset())
        ]
        expand_pairs = self.session.expand_pairs
        while stack:
            current, depth, used = stack.pop()
            if depth == max_hops:
                continue
            for eid, neighbor in expand_pairs(current, labels, direction):
                if eid in used:
                    continue
                if depth + 1 >= min_hops:
                    results.append((eid, neighbor))
                stack.append((neighbor, depth + 1, used | {eid}))
        return results

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def _project(
        self,
        query: Query,
        stream: Iterator[Binding],
        evaluator: _Evaluator,
    ) -> tuple[list[str], Iterable[tuple]]:
        items = query.return_items
        columns = [
            item.output_name(i) for i, item in enumerate(items)
        ]
        has_aggregate = any(
            contains_aggregate(item.expr) for item in items
        )
        if not has_aggregate:
            fns = [evaluator.compile(item.expr) for item in items]
            if len(fns) == 1:
                fn = fns[0]
                rows = ((fn(b),) for b in stream)
            else:
                rows = (tuple(fn(b) for fn in fns) for b in stream)
            return columns, rows

        grouping = [
            evaluator.compile(item.expr)
            for item in items
            if not contains_aggregate(item.expr)
        ]
        groups: dict[object, list[Binding]] = {}
        setdefault = groups.setdefault
        if len(grouping) == 1:
            key_fn = grouping[0]
            for binding in stream:
                setdefault(_hashable(key_fn(binding)), []).append(binding)
        else:
            for binding in stream:
                key = tuple(_hashable(fn(binding)) for fn in grouping)
                setdefault(key, []).append(binding)
        if not groups and not grouping:
            groups[()] = []  # global aggregate over zero matches
        group_fns = [evaluator.compile_group(item.expr) for item in items]
        rows = [
            tuple(fn(group) for fn in group_fns)
            for group in groups.values()
        ]
        return columns, rows

    def _order(
        self, query: Query, columns: list[str], rows: Iterable[tuple]
    ) -> list[tuple]:
        indices: list[tuple[int, bool]] = []
        for order in query.order_by:
            index = _order_column(order.expr, query.return_items, columns)
            indices.append((index, order.descending))
        if query.limit is not None:
            # Bounded heap: top-k without materializing a full sort.
            def key(row: tuple) -> tuple:
                return tuple(
                    _Descending(_sort_key(row[i])) if descending
                    else _sort_key(row[i])
                    for i, descending in indices
                )

            return heapq.nsmallest(query.limit, rows, key=key)
        rows = list(rows)
        for index, descending in reversed(indices):
            rows = sorted(
                rows,
                key=lambda row: _sort_key(row[index]),
                reverse=descending,
            )
        return rows


class _Descending:
    """Inverts comparison order for DESC keys inside the top-k heap."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Descending) and other.value == self.value
        )


def _order_column(
    expr: Expr, items: tuple[ReturnItem, ...], columns: list[str]
) -> int:
    if isinstance(expr, Variable) and expr.name in columns:
        return columns.index(expr.name)
    for i, item in enumerate(items):
        if item.expr == expr:
            return i
    raise QueryError(
        "ORDER BY must reference a returned alias or expression"
    )


def _hashable(value: object) -> object:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _sort_key(value: object) -> tuple:
    if value is None:
        return (1, 0, "")
    if isinstance(value, bool):
        return (0, 0, int(value))
    if isinstance(value, (int, float)):
        return (0, 0, value)
    if isinstance(value, str):
        return (0, 1, value)
    return (0, 2, str(value))


def _dedupe(rows: Iterable[tuple]) -> Iterator[tuple]:
    seen: set = set()
    for row in rows:
        key = tuple(_hashable(v) for v in row)
        if key not in seen:
            seen.add(key)
            yield row
