"""Query executor: pattern matching, filtering, aggregation.

Bindings map pattern variables to :class:`VertexBinding` /
:class:`EdgeBinding` wrappers.  All graph access flows through the
:class:`~repro.graphdb.session.GraphSession`, which records the work
counters the latency model consumes.

Aggregation follows Cypher semantics: when any return item contains an
aggregate function, the non-aggregated items become grouping keys;
``size(collect(x))`` style nesting is evaluated inside-out at group
level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.graphdb.metrics import ExecutionMetrics
from repro.graphdb.query.ast import (
    AGGREGATE_FUNCTIONS,
    BoolOp,
    Comparison,
    Expr,
    FuncCall,
    Literal,
    NotOp,
    NullCheck,
    PropertyRef,
    Query,
    ReturnItem,
    Star,
    Variable,
    contains_aggregate,
)
from repro.graphdb.query.functions import (
    apply_aggregate,
    apply_scalar,
    compare,
)
from repro.graphdb.query.parser import parse_query
from repro.graphdb.query.planner import (
    ExpandStep,
    JoinCheckStep,
    NodeSpec,
    Plan,
    ScanStep,
    build_plan,
)
from repro.graphdb.session import GraphSession


@dataclass(frozen=True)
class VertexBinding:
    vid: int


@dataclass(frozen=True)
class EdgeBinding:
    eid: int


Binding = dict[str, object]


@dataclass
class QueryResult:
    columns: list[str]
    rows: list[tuple]
    metrics: ExecutionMetrics
    latency_ms: float

    def single_value(self) -> object:
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryError(
                f"expected a single value, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError(f"no column {name!r}") from None
        return [row[index] for row in self.rows]


class Executor:
    """Executes parsed queries against one instrumented session."""

    def __init__(self, session: GraphSession):
        self.session = session

    def run(self, query: Query | str) -> QueryResult:
        if isinstance(query, str):
            query = parse_query(query)
        plan = build_plan(query, self.session.graph)
        bindings = self._match(plan)
        if query.where is not None:
            bindings = [
                b for b in bindings
                if self._eval_predicate(query.where, b)
            ]
        columns, rows = self._project(query, bindings)
        if query.distinct:
            rows = _dedupe(rows)
        if query.order_by:
            rows = self._order(query, columns, rows)
        if query.limit is not None:
            rows = rows[: query.limit]
        metrics = self.session.reset_metrics()
        metrics.rows = len(rows)
        metrics.queries = 1
        latency = self.session.profile.latency_ms(metrics)
        return QueryResult(columns, rows, metrics, latency)

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def _match(self, plan: Plan) -> list[Binding]:
        bindings: list[Binding] = [{}]
        for step in plan.steps:
            if isinstance(step, ScanStep):
                bindings = self._scan(step, plan.node_specs, bindings)
            elif isinstance(step, ExpandStep):
                bindings = self._expand(step, plan.node_specs, bindings)
            elif isinstance(step, JoinCheckStep):
                bindings = self._join_check(step, bindings)
            if not bindings:
                return []
        return bindings

    def _candidates(self, spec: NodeSpec) -> list[int]:
        session = self.session
        graph = session.graph
        for prop, value in spec.props.items():
            for label in spec.labels:
                if graph.has_property_index(label, prop):
                    return session.index_lookup(label, prop, value)
        if spec.labels:
            label = min(spec.labels, key=graph.label_count)
            return session.label_scan(label)
        return [v.vid for v in graph.iter_vertices()]

    def _accept_vertex(self, vid: int, spec: NodeSpec) -> bool:
        labels = self.session.read_labels(vid)
        if not set(spec.labels) <= labels:
            return False
        for prop, value in spec.props.items():
            if self.session.read_property(vid, prop) != value:
                return False
        return True

    def _scan(
        self,
        step: ScanStep,
        specs: dict[str, NodeSpec],
        bindings: list[Binding],
    ) -> list[Binding]:
        spec = specs[step.var]
        matched = [
            vid for vid in self._candidates(spec)
            if self._accept_vertex(vid, spec)
        ]
        return [
            {**binding, step.var: VertexBinding(vid)}
            for binding in bindings
            for vid in matched
        ]

    def _expand_one(
        self, vid: int, step: ExpandStep
    ) -> list[tuple[int, int]]:
        """(eid, neighbor vid) pairs reachable from ``vid`` over the edge.

        For variable-length patterns (``-[:T*m..n]->``) a path search
        runs per Cypher semantics (no relationship repeats within one
        path); each distinct path yields one result whose ``eid`` is
        the last edge taken.
        """
        edge_spec = step.edge
        if step.from_var == edge_spec.src_var:
            direction = edge_spec.direction
        else:  # walking the pattern backwards
            flip = {"out": "in", "in": "out", "any": "any"}
            direction = flip[edge_spec.direction]
        if edge_spec.min_hops == 1 and edge_spec.max_hops == 1:
            return self._adjacent(vid, edge_spec.labels, direction)
        return self._expand_paths(
            vid, edge_spec.labels, direction,
            edge_spec.min_hops, edge_spec.max_hops,
        )

    def _adjacent(
        self, vid: int, labels: tuple[str, ...], direction: str
    ) -> list[tuple[int, int]]:
        results: list[tuple[int, int]] = []
        for label in labels or (None,):
            for edge in self.session.expand(vid, label, direction):
                neighbor = edge.dst if edge.src == vid else edge.src
                results.append((edge.eid, neighbor))
        return results

    def _expand_paths(
        self,
        vid: int,
        labels: tuple[str, ...],
        direction: str,
        min_hops: int,
        max_hops: int,
    ) -> list[tuple[int, int]]:
        results: list[tuple[int, int]] = []
        if min_hops == 0:
            results.append((-1, vid))
        # DFS over paths; Cypher forbids reusing a relationship within
        # one path but allows revisiting vertices.
        stack: list[tuple[int, int, frozenset[int], int]] = [
            (vid, 0, frozenset(), -1)
        ]
        while stack:
            current, depth, used, last_eid = stack.pop()
            if depth == max_hops:
                continue
            for eid, neighbor in self._adjacent(
                current, labels, direction
            ):
                if eid in used:
                    continue
                if depth + 1 >= min_hops:
                    results.append((eid, neighbor))
                stack.append(
                    (neighbor, depth + 1, used | {eid}, eid)
                )
        return results

    def _expand(
        self,
        step: ExpandStep,
        specs: dict[str, NodeSpec],
        bindings: list[Binding],
    ) -> list[Binding]:
        spec = specs[step.to_var]
        out: list[Binding] = []
        for binding in bindings:
            from_binding = binding[step.from_var]
            assert isinstance(from_binding, VertexBinding)
            for eid, neighbor in self._expand_one(from_binding.vid, step):
                if not self._accept_vertex(neighbor, spec):
                    continue
                extended = {**binding, step.to_var: VertexBinding(neighbor)}
                plain_hop = (
                    step.edge.min_hops, step.edge.max_hops
                ) == (1, 1)
                if step.edge.rel_var and plain_hop:
                    # Variable-length patterns bind a path in Cypher;
                    # we bind relationship variables on plain hops only.
                    extended[step.edge.rel_var] = EdgeBinding(eid)
                out.append(extended)
        return out

    def _join_check(
        self, step: JoinCheckStep, bindings: list[Binding]
    ) -> list[Binding]:
        edge_spec = step.edge
        variable_length = (
            edge_spec.min_hops, edge_spec.max_hops
        ) != (1, 1)
        out: list[Binding] = []
        for binding in bindings:
            src = binding[edge_spec.src_var]
            dst = binding[edge_spec.dst_var]
            assert isinstance(src, VertexBinding)
            assert isinstance(dst, VertexBinding)
            matched_eid = None
            if variable_length:
                for eid, neighbor in self._expand_paths(
                    src.vid, edge_spec.labels, edge_spec.direction,
                    edge_spec.min_hops, edge_spec.max_hops,
                ):
                    if neighbor == dst.vid:
                        matched_eid = eid
                        break
            else:
                for label in edge_spec.labels or (None,):
                    for edge in self.session.expand(
                        src.vid, label, edge_spec.direction
                    ):
                        neighbor = (
                            edge.dst if edge.src == src.vid else edge.src
                        )
                        if neighbor == dst.vid:
                            matched_eid = edge.eid
                            break
                    if matched_eid is not None:
                        break
            if matched_eid is None:
                continue
            if edge_spec.rel_var and not variable_length:
                binding = {
                    **binding, edge_spec.rel_var: EdgeBinding(matched_eid)
                }
            out.append(binding)
        return out

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval_row(self, expr: Expr, binding: Binding) -> object:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Star):
            return 1
        if isinstance(expr, Variable):
            if expr.name not in binding:
                raise QueryError(f"unbound variable {expr.name!r}")
            return binding[expr.name]
        if isinstance(expr, PropertyRef):
            bound = binding.get(expr.var)
            if bound is None:
                raise QueryError(f"unbound variable {expr.var!r}")
            if isinstance(bound, VertexBinding):
                return self.session.read_property(bound.vid, expr.prop)
            if isinstance(bound, EdgeBinding):
                return self.session.read_edge_property(bound.eid, expr.prop)
            raise QueryError(
                f"variable {expr.var!r} is not a vertex or edge"
            )
        if isinstance(expr, FuncCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                raise QueryError(
                    f"aggregate {expr.name}() outside aggregation context"
                )
            args = [self._eval_row(arg, binding) for arg in expr.args]
            return apply_scalar(expr.name, args)
        if isinstance(expr, (Comparison, BoolOp, NotOp, NullCheck)):
            return self._eval_predicate(expr, binding)
        raise QueryError(f"cannot evaluate expression {expr!r}")

    def _eval_predicate(self, expr: Expr, binding: Binding) -> bool:
        if isinstance(expr, Comparison):
            return compare(
                expr.op,
                self._eval_row(expr.lhs, binding),
                self._eval_row(expr.rhs, binding),
            )
        if isinstance(expr, NullCheck):
            value = self._eval_row(expr.expr, binding)
            return value is not None if expr.negated else value is None
        if isinstance(expr, BoolOp):
            results = (
                self._eval_predicate(op, binding) for op in expr.operands
            )
            return all(results) if expr.op == "and" else any(results)
        if isinstance(expr, NotOp):
            return not self._eval_predicate(expr.operand, binding)
        return bool(self._eval_row(expr, binding))

    def _eval_group(self, expr: Expr, group: list[Binding]) -> object:
        if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            if not expr.args:
                raise QueryError(f"{expr.name}() needs an argument")
            arg = expr.args[0]
            values = [self._eval_row(arg, b) for b in group]
            return apply_aggregate(
                expr.name, values, distinct=expr.distinct,
                flatten=expr.flatten,
            )
        if isinstance(expr, FuncCall):
            args = [self._eval_group(arg, group) for arg in expr.args]
            return apply_scalar(expr.name, args)
        if not contains_aggregate(expr):
            if not group:
                return None
            return self._eval_row(expr, group[0])
        raise QueryError(
            f"unsupported aggregate nesting in {expr!r}"
        )  # pragma: no cover - parser produces FuncCall nests only

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def _project(
        self, query: Query, bindings: list[Binding]
    ) -> tuple[list[str], list[tuple]]:
        items = query.return_items
        columns = [
            item.output_name(i) for i, item in enumerate(items)
        ]
        has_aggregate = any(
            contains_aggregate(item.expr) for item in items
        )
        if not has_aggregate:
            rows = [
                tuple(self._eval_row(item.expr, b) for item in items)
                for b in bindings
            ]
            return columns, rows

        grouping_indices = [
            i for i, item in enumerate(items)
            if not contains_aggregate(item.expr)
        ]
        groups: dict[tuple, list[Binding]] = {}
        for binding in bindings:
            key = tuple(
                _hashable(self._eval_row(items[i].expr, binding))
                for i in grouping_indices
            )
            groups.setdefault(key, []).append(binding)
        if not groups and not grouping_indices:
            groups[()] = []  # global aggregate over zero matches
        rows = [
            tuple(self._eval_group(item.expr, group) for item in items)
            for group in groups.values()
        ]
        return columns, rows

    def _order(
        self, query: Query, columns: list[str], rows: list[tuple]
    ) -> list[tuple]:
        indices: list[tuple[int, bool]] = []
        for order in query.order_by:
            index = _order_column(order.expr, query.return_items, columns)
            indices.append((index, order.descending))
        for index, descending in reversed(indices):
            rows = sorted(
                rows,
                key=lambda row: _sort_key(row[index]),
                reverse=descending,
            )
        return rows


def _order_column(
    expr: Expr, items: tuple[ReturnItem, ...], columns: list[str]
) -> int:
    if isinstance(expr, Variable) and expr.name in columns:
        return columns.index(expr.name)
    for i, item in enumerate(items):
        if item.expr == expr:
            return i
    raise QueryError(
        "ORDER BY must reference a returned alias or expression"
    )


def _hashable(value: object) -> object:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def _sort_key(value: object) -> tuple:
    if value is None:
        return (1, 0, "")
    if isinstance(value, bool):
        return (0, 0, int(value))
    if isinstance(value, (int, float)):
        return (0, 0, value)
    if isinstance(value, str):
        return (0, 1, value)
    return (0, 2, str(value))


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    result: list[tuple] = []
    for row in rows:
        key = tuple(_hashable(v) for v in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result
