"""Query AST for the Cypher subset.

All nodes are frozen dataclasses built from tuples, so ASTs are
immutable, hashable and safe to share - the query rewriter produces new
trees instead of mutating.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

#: Aggregate function names recognized by the executor.
AGGREGATE_FUNCTIONS = frozenset(
    {"count", "collect", "sum", "avg", "min", "max"}
)

#: Scalar function names recognized by the executor.
SCALAR_FUNCTIONS = frozenset({"size", "head", "coalesce"})


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class Variable:
    name: str


@dataclass(frozen=True)
class Parameter:
    """A ``$name`` placeholder, bound to a value at execution time.

    Parameters keep the query *shape* constant across executions, so
    plans built for ``MATCH (d:Drug {id: $id}) ...`` are cached once
    and re-bound per run instead of re-parsed and re-planned for every
    literal value.
    """

    name: str


@dataclass(frozen=True)
class PropertyRef:
    var: str
    prop: str


@dataclass(frozen=True)
class Star:
    """The ``*`` inside COUNT(*)."""


@dataclass(frozen=True)
class FuncCall:
    name: str                      # lower-cased
    args: tuple["Expr", ...]
    distinct: bool = False
    #: When True, list-valued inputs are flattened element-wise before
    #: aggregating - the rewriter uses this to turn COLLECT over a far
    #: node's property into COLLECT over local list properties.
    flatten: bool = False


@dataclass(frozen=True)
class Comparison:
    lhs: "Expr"
    op: str        # = <> < > <= >= contains in
    rhs: "Expr"


@dataclass(frozen=True)
class NullCheck:
    expr: "Expr"
    negated: bool  # True => IS NOT NULL


@dataclass(frozen=True)
class BoolOp:
    op: str        # and / or
    operands: tuple["Expr", ...]


@dataclass(frozen=True)
class NotOp:
    operand: "Expr"


Expr = Union[
    Literal, Variable, Parameter, PropertyRef, Star, FuncCall,
    Comparison, NullCheck, BoolOp, NotOp,
]


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodePattern:
    var: str | None
    labels: tuple[str, ...] = ()
    #: Property-map entries; values are literals or ``$parameters``.
    props: tuple[tuple[str, Literal | Parameter], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    var: str | None
    labels: tuple[str, ...] = ()
    direction: str = "out"   # out / in / any
    #: Variable-length paths: ``-[:T*1..3]->``.  (1, 1) is a plain hop.
    min_hops: int = 1
    max_hops: int = 1

    @property
    def is_variable_length(self) -> bool:
        return (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class PathPattern:
    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...] = ()
    path_var: str | None = None

    def hops(self) -> list[tuple[NodePattern, RelPattern, NodePattern]]:
        return [
            (self.nodes[i], rel, self.nodes[i + 1])
            for i, rel in enumerate(self.rels)
        ]


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReturnItem:
    expr: Expr
    alias: str | None = None

    def output_name(self, index: int) -> str:
        if self.alias:
            return self.alias
        return expr_text(self.expr) or f"col{index}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Query:
    patterns: tuple[PathPattern, ...]
    return_items: tuple[ReturnItem, ...]
    where: Expr | None = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    def with_(self, **changes) -> "Query":
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Tree utilities
# ----------------------------------------------------------------------
def walk(expr: Expr):
    """Yield every node of an expression tree (pre-order).

    Leaf nodes (:class:`Literal`, :class:`Variable`,
    :class:`Parameter`, :class:`PropertyRef`, :class:`Star`) yield
    themselves; composite nodes recurse into their operands.
    """
    yield expr
    if isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, Comparison):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)
    elif isinstance(expr, BoolOp):
        for operand in expr.operands:
            yield from walk(operand)
    elif isinstance(expr, NotOp):
        yield from walk(expr.operand)
    elif isinstance(expr, NullCheck):
        yield from walk(expr.expr)


def contains_aggregate(expr: Expr) -> bool:
    return any(
        isinstance(node, FuncCall) and node.name in AGGREGATE_FUNCTIONS
        for node in walk(expr)
    )


def variables_used(expr: Expr) -> set[str]:
    used: set[str] = set()
    for node in walk(expr):
        if isinstance(node, Variable):
            used.add(node.name)
        elif isinstance(node, PropertyRef):
            used.add(node.var)
    return used


def parameters_used(query: "Query") -> set[str]:
    """Every ``$name`` the query references, in patterns and clauses."""
    names: set[str] = set()

    def scan(expr: Expr) -> None:
        for node in walk(expr):
            if isinstance(node, Parameter):
                names.add(node.name)

    for pattern in query.patterns:
        for node in pattern.nodes:
            for _name, value in node.props:
                if isinstance(value, Parameter):
                    names.add(value.name)
    if query.where is not None:
        scan(query.where)
    for item in query.return_items:
        scan(item.expr)
    for order in query.order_by:
        scan(order.expr)
    return names


def substitute_variable(expr: Expr, old: str, new: str) -> Expr:
    """Return ``expr`` with every use of variable ``old`` renamed."""
    if isinstance(expr, Variable):
        return Variable(new) if expr.name == old else expr
    if isinstance(expr, PropertyRef):
        return PropertyRef(new, expr.prop) if expr.var == old else expr
    if isinstance(expr, FuncCall):
        return replace(
            expr,
            args=tuple(substitute_variable(a, old, new) for a in expr.args),
        )
    if isinstance(expr, Comparison):
        return Comparison(
            substitute_variable(expr.lhs, old, new),
            expr.op,
            substitute_variable(expr.rhs, old, new),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op,
            tuple(
                substitute_variable(o, old, new) for o in expr.operands
            ),
        )
    if isinstance(expr, NotOp):
        return NotOp(substitute_variable(expr.operand, old, new))
    if isinstance(expr, NullCheck):
        return NullCheck(
            substitute_variable(expr.expr, old, new), expr.negated
        )
    return expr


def expr_text(expr: Expr) -> str:
    """A printable rendering of an expression (used for column names)."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, PropertyRef):
        prop = f"`{expr.prop}`" if "." in expr.prop else expr.prop
        return f"{expr.var}.{prop}"
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, FuncCall):
        inner = ", ".join(expr_text(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{inner})"
    if isinstance(expr, Comparison):
        return (
            f"{expr_text(expr.lhs)} {expr.op} {expr_text(expr.rhs)}"
        )
    if isinstance(expr, NullCheck):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{expr_text(expr.expr)} {op}"
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return joiner.join(expr_text(o) for o in expr.operands)
    if isinstance(expr, NotOp):
        return f"NOT {expr_text(expr.operand)}"
    return ""


def query_text(query: Query) -> str:
    """Render a query AST back to (approximate) Cypher text."""
    parts: list[str] = []
    pattern_texts = []
    for pattern in query.patterns:
        bits = [_node_text(pattern.nodes[0])]
        for rel, node in zip(pattern.rels, pattern.nodes[1:]):
            bits.append(_rel_text(rel))
            bits.append(_node_text(node))
        text = "".join(bits)
        if pattern.path_var:
            text = f"{pattern.path_var} = {text}"
        pattern_texts.append(text)
    if pattern_texts:
        parts.append("MATCH " + ", ".join(pattern_texts))
    if query.where is not None:
        parts.append("WHERE " + expr_text(query.where))
    returns = ", ".join(
        expr_text(item.expr) + (f" AS {item.alias}" if item.alias else "")
        for item in query.return_items
    )
    distinct = "DISTINCT " if query.distinct else ""
    parts.append(f"RETURN {distinct}{returns}")
    if query.order_by:
        orders = ", ".join(
            expr_text(o.expr) + (" DESC" if o.descending else "")
            for o in query.order_by
        )
        parts.append("ORDER BY " + orders)
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def _node_text(node: NodePattern) -> str:
    inner = node.var or ""
    for label in node.labels:
        inner += f":{label}"
    if node.props:
        pairs = ", ".join(
            f"{name}: "
            + (
                f"${value.name}" if isinstance(value, Parameter)
                else repr(value.value)
            )
            for name, value in node.props
        )
        inner += f" {{{pairs}}}"
    return f"({inner})"


def _rel_text(rel: RelPattern) -> str:
    inner = rel.var or ""
    if rel.labels:
        inner += ":" + "|".join(rel.labels)
    if rel.is_variable_length:
        inner += f"*{rel.min_hops}..{rel.max_hops}"
    body = f"[{inner}]" if inner else ""
    if rel.direction == "out":
        return f"-{body}->"
    if rel.direction == "in":
        return f"<-{body}-"
    return f"-{body}-"
