"""Execution metrics and the simulated latency model.

The paper's gains come from doing *less work per query* - fewer edge
traversals, fewer vertex/property reads, less page I/O.  The engine
counts each kind of work; a :class:`BackendProfile` (see
:mod:`repro.graphdb.backends`) weights the counts into a deterministic
simulated latency.  Shapes (who wins, by what factor) therefore carry
over from the paper even though absolute milliseconds differ from the
authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class ExecutionMetrics:
    """Work counters for one query execution (or a workload).

    Every field is an additive counter, so :meth:`merge` and
    :meth:`as_dict` are derived from the dataclass fields - adding a
    counter is a one-line change.
    """

    edge_traversals: int = 0
    vertex_reads: int = 0
    property_reads: int = 0
    index_lookups: int = 0
    page_hits: int = 0
    page_misses: int = 0
    rows: int = 0
    queries: int = 0
    #: Transient I/O errors absorbed by bounded retry (WAL/snapshot
    #: fsync paths) while this execution was the open unit of work.
    io_retries: int = 0
    #: Faults the failpoint harness injected in the same window (zero
    #: outside fault-injection tests unless ``REPRO_FAULTS`` is set).
    faults_injected: int = 0

    def merge(self, other: "ExecutionMetrics") -> None:
        for name in _FIELD_NAMES:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _FIELD_NAMES}


_FIELD_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(ExecutionMetrics)
)


@dataclass
class LruPageCache:
    """A tiny LRU page cache; only hit/miss accounting matters here."""

    capacity: int
    _pages: dict[tuple, None] = field(default_factory=dict)

    def touch(self, page_id: tuple) -> bool:
        """Access a page; returns True on a hit."""
        pages = self._pages
        if page_id in pages:
            del pages[page_id]
            pages[page_id] = None
            return True
        capacity = self.capacity
        if capacity > 0:
            if len(pages) >= capacity:
                del pages[next(iter(pages))]
            pages[page_id] = None
        return False

    def clear(self) -> None:
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)
