"""Execution metrics and the simulated latency model.

The paper's gains come from doing *less work per query* - fewer edge
traversals, fewer vertex/property reads, less page I/O.  The engine
counts each kind of work; a :class:`BackendProfile` (see
:mod:`repro.graphdb.backends`) weights the counts into a deterministic
simulated latency.  Shapes (who wins, by what factor) therefore carry
over from the paper even though absolute milliseconds differ from the
authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionMetrics:
    """Work counters for one query execution (or a workload)."""

    edge_traversals: int = 0
    vertex_reads: int = 0
    property_reads: int = 0
    index_lookups: int = 0
    page_hits: int = 0
    page_misses: int = 0
    rows: int = 0
    queries: int = 0
    #: Transient I/O errors absorbed by bounded retry (WAL/snapshot
    #: fsync paths) while this execution was the open unit of work.
    io_retries: int = 0
    #: Faults the failpoint harness injected in the same window (zero
    #: outside fault-injection tests unless ``REPRO_FAULTS`` is set).
    faults_injected: int = 0

    def merge(self, other: "ExecutionMetrics") -> None:
        self.edge_traversals += other.edge_traversals
        self.vertex_reads += other.vertex_reads
        self.property_reads += other.property_reads
        self.index_lookups += other.index_lookups
        self.page_hits += other.page_hits
        self.page_misses += other.page_misses
        self.rows += other.rows
        self.queries += other.queries
        self.io_retries += other.io_retries
        self.faults_injected += other.faults_injected

    def as_dict(self) -> dict[str, int]:
        return {
            "edge_traversals": self.edge_traversals,
            "vertex_reads": self.vertex_reads,
            "property_reads": self.property_reads,
            "index_lookups": self.index_lookups,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "rows": self.rows,
            "queries": self.queries,
            "io_retries": self.io_retries,
            "faults_injected": self.faults_injected,
        }


@dataclass
class LruPageCache:
    """A tiny LRU page cache; only hit/miss accounting matters here."""

    capacity: int
    _pages: dict[tuple, None] = field(default_factory=dict)

    def touch(self, page_id: tuple) -> bool:
        """Access a page; returns True on a hit."""
        pages = self._pages
        if page_id in pages:
            del pages[page_id]
            pages[page_id] = None
            return True
        capacity = self.capacity
        if capacity > 0:
            if len(pages) >= capacity:
                del pages[next(iter(pages))]
            pages[page_id] = None
        return False

    def clear(self) -> None:
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)
