"""Instrumented in-memory property graph engine with a Cypher subset.

Two API levels live here:

* the **driver API** (:mod:`repro.graphdb.api`) - the supported
  application surface: :func:`connect` → :class:`Database` →
  :class:`Session` → :class:`Result`, with ``$name`` query parameters
  and explicit :class:`Transaction` handles.  Start there;
* the **engine API** - :class:`PropertyGraph`, the instrumented
  :class:`GraphSession`, and the :class:`Executor`, for
  instrumentation-level work (benchmarks, planner experiments) and
  backward compatibility.

The structured exception hierarchy roots at :class:`GraphError`:
:class:`QueryError` (with :class:`QuerySyntaxError` and
:class:`ParameterError` beneath it), :class:`TransactionError`, and
the guardrail pair :class:`ResourceLimitError` /
:class:`QueryTimeoutError` raised by ``session.run(...,
timeout=, max_rows=)``.
"""

from repro.exceptions import (
    GraphError,
    ParameterError,
    QueryError,
    QuerySyntaxError,
    QueryTimeoutError,
    ResourceLimitError,
    TransactionError,
)
from repro.graphdb.api import (
    Database,
    ObserveConfig,
    Record,
    Result,
    ResultSummary,
    Session,
    Trace,
    Transaction,
    connect,
    render_prometheus,
)
from repro.graphdb.backends import (
    JANUSGRAPH_LIKE,
    NEO4J_LIKE,
    PROFILES,
    BackendProfile,
)
from repro.graphdb.columnar import PropertyColumn, SymbolTable, VertexTable
from repro.graphdb.graph import Edge, PropertyGraph, Vertex
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache
from repro.graphdb.query.executor import Executor, QueryResult
from repro.graphdb.session import GraphSession
from repro.graphdb.view import GraphView, graph_pagerank

__all__ = [
    # Driver API (the supported application surface)
    "Database",
    "ObserveConfig",
    "Record",
    "Result",
    "ResultSummary",
    "Session",
    "Trace",
    "Transaction",
    "connect",
    "render_prometheus",
    # Exceptions
    "GraphError",
    "ParameterError",
    "QueryError",
    "QuerySyntaxError",
    "QueryTimeoutError",
    "ResourceLimitError",
    "TransactionError",
    # Engine API (instrumentation-level)
    "BackendProfile",
    "Edge",
    "ExecutionMetrics",
    "Executor",
    "GraphSession",
    "GraphView",
    "JANUSGRAPH_LIKE",
    "LruPageCache",
    "NEO4J_LIKE",
    "PROFILES",
    "PropertyColumn",
    "PropertyGraph",
    "QueryResult",
    "SymbolTable",
    "Vertex",
    "VertexTable",
    "graph_pagerank",
]
