"""Instrumented in-memory property graph engine with a Cypher subset."""

from repro.graphdb.backends import (
    JANUSGRAPH_LIKE,
    NEO4J_LIKE,
    PROFILES,
    BackendProfile,
)
from repro.graphdb.columnar import PropertyColumn, SymbolTable, VertexTable
from repro.graphdb.graph import Edge, PropertyGraph, Vertex
from repro.graphdb.metrics import ExecutionMetrics, LruPageCache
from repro.graphdb.query.executor import Executor, QueryResult
from repro.graphdb.session import GraphSession
from repro.graphdb.view import GraphView, graph_pagerank

__all__ = [
    "BackendProfile",
    "Edge",
    "ExecutionMetrics",
    "Executor",
    "GraphSession",
    "GraphView",
    "JANUSGRAPH_LIKE",
    "LruPageCache",
    "NEO4J_LIKE",
    "PROFILES",
    "PropertyColumn",
    "PropertyGraph",
    "QueryResult",
    "SymbolTable",
    "Vertex",
    "VertexTable",
    "graph_pagerank",
]
