"""Columnar building blocks for the property graph core.

Three pieces, composed by :class:`~repro.graphdb.graph.PropertyGraph`:

* :class:`SymbolTable` - interns label / edge-type / property-key
  strings into dense integer ids (one table per graph).  Hot paths
  compare and hash small ints instead of strings, and the snapshot
  codec's string section maps 1:1 onto it.
* :class:`PropertyColumn` - one typed column of property values,
  indexed by a table-local dense row id.  Int and float columns are
  ``array``-backed (8 bytes per slot, C-speed bulk iteration);
  anything else falls back to a plain object list.  A presence bitmap
  distinguishes *absent* from a stored ``None``.  Writing a value the
  current dtype cannot hold promotes the column to the object
  representation in place.
* :class:`VertexTable` - all vertices sharing one label *set* (label
  sets are fixed at vertex creation, so this is the multi-label-exact
  refinement of "per-(label, key)" columns: no value is ever stored
  twice).  Rows are append-only; removal tombstones the row (vid slot
  set to -1, presence bits cleared) so row ids stay stable.

Scans and statistics builds iterate ``zip(vids, column.mask,
column.data)`` - plain C-driven iteration over flat sequences -
instead of hopping through per-vertex dicts.
"""

from __future__ import annotations

from array import array
from typing import Iterator

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Column dtypes. INT/FLOAT are array-backed, OBJ is a list.
KIND_INT = "int64"
KIND_FLOAT = "float64"
KIND_OBJ = "object"

_TYPECODE = {KIND_INT: "q", KIND_FLOAT: "d"}


class SymbolTable:
    """Dense string interning: name -> small int, and back."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        """The id for ``name``, assigning the next dense id if new."""
        sid = self._ids.get(name)
        if sid is None:
            sid = self._ids[name] = len(self._names)
            self._names.append(name)
        return sid

    def sid(self, name: str) -> int | None:
        """The id for ``name``, or None if never interned."""
        return self._ids.get(name)

    def name(self, sid: int) -> str:
        if sid < 0:  # tombstone sentinel must not wrap around
            raise IndexError(f"invalid symbol id {sid}")
        return self._names[sid]

    def names(self) -> list[str]:
        """All interned strings in id order (do not mutate)."""
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SymbolTable {len(self._names)} symbols>"


def _kind_for(value: object) -> str:
    """The tightest column dtype that can hold ``value``.

    ``bool`` deliberately maps to OBJ: packing it into an int column
    would lose the type on the way back out.
    """
    if type(value) is int and _I64_MIN <= value <= _I64_MAX:
        return KIND_INT
    if type(value) is float:
        return KIND_FLOAT
    return KIND_OBJ


class PropertyColumn:
    """One typed, presence-masked column of property values."""

    __slots__ = ("kind", "data", "mask", "count")

    def __init__(self, kind: str = KIND_OBJ):
        self.kind = kind
        typecode = _TYPECODE.get(kind)
        self.data: array | list = (
            array(typecode) if typecode is not None else []
        )
        self.mask = bytearray()
        #: Number of present (mask=1) slots.
        self.count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_value(cls, value: object) -> "PropertyColumn":
        return cls(_kind_for(value))

    @classmethod
    def from_rows(
        cls,
        rows: list[int],
        values: list[object],
        kind: str,
        check: bool = False,
    ) -> "PropertyColumn":
        """Bulk-build a column from (row, value) pairs.

        When ``rows`` is exactly ``0..n-1`` (the common case for a
        snapshot section: every vertex of the label set carries the
        property) the arrays are adopted wholesale - one C call, no
        per-row Python work.  ``check=True`` re-verifies that ``kind``
        can actually hold every value (snapshot MIXED columns) and
        falls back to OBJ otherwise.
        """
        if check and kind != KIND_OBJ:
            if any(_kind_for(v) != kind for v in values):
                kind = KIND_OBJ
        column = cls(kind)
        n = len(rows)
        if n and rows[0] == 0 and rows[-1] == n - 1:
            # Dense prefix: callers pass strictly ascending rows, so
            # first == 0 and last == n-1 means rows are exactly 0..n-1.
            if kind == KIND_OBJ:
                column.data = list(values)
            else:
                column.data = array(_TYPECODE[kind], values)
            column.mask = bytearray(b"\x01") * n
            column.count = n
            return column
        for row, value in zip(rows, values):
            column.set(row, value)
        return column

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def value_at(self, row: int, default: object = None) -> object:
        """The value at ``row``, or ``default`` when absent."""
        if row >= len(self.mask) or not self.mask[row]:
            return default
        return self.data[row]

    def present(self, row: int) -> bool:
        return row < len(self.mask) and bool(self.mask[row])

    def notnull_mask(self) -> bytearray:
        """Presence mask with stored-``None`` slots cleared.

        For typed columns this is the presence mask itself (they never
        hold ``None``); object columns can carry an explicit ``None``,
        which every read path reports identically to an absent key, so
        batch consumers want the *reads-non-null* mask.
        """
        if self.kind != KIND_OBJ:
            return self.mask
        mask = bytearray(self.mask)
        data = self.data
        for row, bit in enumerate(mask):
            if bit and data[row] is None:
                mask[row] = 0
        return mask

    def __len__(self) -> int:
        return len(self.mask)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _pad_to(self, n: int) -> None:
        short = n - len(self.mask)
        if short <= 0:
            return
        self.mask.extend(b"\x00" * short)
        if self.kind == KIND_OBJ:
            self.data.extend([None] * short)
        else:
            self.data.extend([0] * short)

    def _promote(self) -> None:
        """Switch to the object representation, keeping every slot."""
        self.data = list(self.data)
        self.kind = KIND_OBJ

    def set(self, row: int, value: object) -> None:
        kind = self.kind
        if kind is not KIND_OBJ:
            # Inlined dtype guard (hot on the bulk-load path).
            if kind is KIND_INT:
                if type(value) is not int or not (
                    _I64_MIN <= value <= _I64_MAX
                ):
                    self._promote()
            elif type(value) is not float:
                self._promote()
        self._pad_to(row + 1)
        if not self.mask[row]:
            self.mask[row] = 1
            self.count += 1
        self.data[row] = value

    def unset(self, row: int) -> None:
        """Clear a slot (absent); frees object references."""
        if row >= len(self.mask) or not self.mask[row]:
            return
        self.mask[row] = 0
        self.count -= 1
        if self.kind == KIND_OBJ:
            self.data[row] = None
        else:
            self.data[row] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PropertyColumn {self.kind} {self.count}/{len(self.mask)}>"
        )


class VertexTable:
    """The columnar store for one label set's vertices."""

    __slots__ = ("labelset_id", "label_sids", "labels", "vids", "live",
                 "columns")

    def __init__(
        self,
        labelset_id: int,
        label_sids: frozenset[int],
        labels: frozenset[str],
    ):
        self.labelset_id = labelset_id
        self.label_sids = label_sids
        #: The label set as strings (what facades hand out).
        self.labels = labels
        #: row -> vid; -1 marks a tombstoned (removed) row.
        self.vids: list[int] = []
        self.live = 0
        #: property-key symbol id -> column (rows align with ``vids``).
        self.columns: dict[int, PropertyColumn] = {}

    def new_row(self, vid: int) -> int:
        row = len(self.vids)
        self.vids.append(vid)
        self.live += 1
        return row

    def tombstone(self, row: int) -> None:
        self.vids[row] = -1
        self.live -= 1
        for column in self.columns.values():
            column.unset(row)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    def set_prop(self, row: int, key_sid: int, value: object) -> None:
        column = self.columns.get(key_sid)
        if column is None:
            column = self.columns[key_sid] = PropertyColumn.for_value(
                value
            )
        column.set(row, value)

    def get_prop(
        self, row: int, key_sid: int | None, default: object = None
    ) -> object:
        if key_sid is None:
            return default
        column = self.columns.get(key_sid)
        if column is None:
            return default
        return column.value_at(row, default)

    def has_prop(self, row: int, key_sid: int | None) -> bool:
        if key_sid is None:
            return False
        column = self.columns.get(key_sid)
        return column is not None and column.present(row)

    def unset_prop(self, row: int, key_sid: int) -> None:
        column = self.columns.get(key_sid)
        if column is not None:
            column.unset(row)

    def row_keys(self, row: int) -> list[int]:
        """Symbol ids of the properties present on one row."""
        return [
            sid for sid, column in self.columns.items()
            if column.present(row)
        ]

    def iter_prop_items(
        self, key_sid: int
    ) -> Iterator[tuple[int, object]]:
        """(vid, value) pairs of one column, live present rows only."""
        column = self.columns.get(key_sid)
        if column is None:
            return
        for vid, present, value in zip(
            self.vids, column.mask, column.data
        ):
            if present and vid >= 0:
                yield vid, value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = "+".join(sorted(self.labels))
        return (
            f"<VertexTable :{labels} {self.live} rows, "
            f"{len(self.columns)} columns>"
        )
