"""Explicit transactions for the driver API.

A :class:`Transaction` wraps the graph's in-memory undo log
(:meth:`~repro.graphdb.graph.PropertyGraph.begin_transaction`) and the
WAL's BEGIN/COMMIT framing: mutations made through the handle are
revocable until :meth:`Transaction.commit`, and - on a durable
database - only become recoverable once the COMMIT record is on disk
(commit fsyncs).  A crash before the COMMIT recovers to the exact
pre-transaction state; :meth:`Transaction.rollback` restores it in
memory, statistics and indexes included.

Queries run inside the transaction (``tx.run(...)``) see its
uncommitted writes, like any same-connection read in a real driver.
Leaving a ``with`` block without committing rolls back - commit is
always explicit::

    with session.begin_tx() as tx:
        vid = tx.add_vertex("Drug", {"name": "aspirin"})
        tx.run("MATCH (d:Drug) RETURN count(*)").single()
        tx.commit()
"""

from __future__ import annotations

from repro.exceptions import TransactionError
from repro.graphdb.api.result import Result


class Transaction:
    """A revocable unit of work on one session's graph."""

    def __init__(self, session):
        self._session = session
        self._graph = session._graph_session.graph
        self._closed = False
        self._graph.begin_transaction()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self,
        query,
        parameters: dict[str, object] | None = None,
        **params: object,
    ) -> Result:
        """Run a query inside the transaction (sees uncommitted writes)."""
        self._require_open()
        return self._session.run(query, parameters, **params)

    # ------------------------------------------------------------------
    # Mutations (delegate to the graph so indexes/statistics/WAL and
    # the undo log all see them)
    # ------------------------------------------------------------------
    def add_vertex(self, labels, properties=None) -> int:
        self._before_mutation()
        return self._graph.add_vertex(labels, properties)

    def add_edge(self, src: int, dst: int, label: str,
                 properties=None) -> int:
        self._before_mutation()
        return self._graph.add_edge(src, dst, label, properties)

    def set_property(self, vid: int, name: str, value) -> None:
        self._before_mutation()
        self._graph.set_property(vid, name, value)

    def remove_property(self, vid: int, name: str) -> None:
        self._before_mutation()
        self._graph.remove_property(vid, name)

    def remove_edge(self, eid: int) -> None:
        self._before_mutation()
        self._graph.remove_edge(eid)

    def remove_vertex(self, vid: int) -> None:
        self._before_mutation()
        self._graph.remove_vertex(vid)

    def create_property_index(self, label: str, prop: str) -> None:
        self._before_mutation()
        self._graph.create_property_index(label, prop)

    def _before_mutation(self) -> None:
        """Guard + cursor isolation for one mutation.

        Any result still streaming (even one opened inside this
        transaction) is settled first, so its remaining records
        capture the pre-mutation state instead of rows this mutation
        is about to change.
        """
        self._require_open()
        self._session._finish_open_result()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def commit(self) -> None:
        """Make the transaction permanent (and durable, when backed).

        Writes the WAL COMMIT framing record and forces it to disk, so
        a crash after ``commit()`` returns replays the transaction.
        """
        self._require_open()
        store = self._session._store()
        if store is not None and self._session._database.closed:
            # Refuse *before* committing in memory: the WAL can no
            # longer record the COMMIT, so the caller must get a
            # catchable driver error while the transaction is still
            # open (and retryable), not a raw file error afterwards.
            # (In-memory databases have nothing durable at stake and
            # commit fine.)
            raise TransactionError(
                "database is closed; cannot commit durably"
            )
        self._session._finish_open_result()
        self._closed = True
        self._graph.commit_transaction()
        if store is not None:
            # A lone in-process commit is a group of one; the batch
            # histogram makes the contrast with the server's grouped
            # fsyncs visible.
            store.sync_group(1)

    def rollback(self) -> None:
        """Revert every mutation made through this transaction."""
        self._require_open()
        self._session._finish_open_result()
        self._closed = True
        self._graph.rollback_transaction()

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction is closed")

    def __enter__(self) -> Transaction:
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if not self._closed:
            self.rollback()
