"""Remote driver: the ``connect("repro://host:port")`` client half.

Presents the same Database / Session / Result / Transaction surface as
the in-process driver, backed by one TCP connection per session
speaking the framed protocol in :mod:`repro.graphdb.server.protocol`.
Rows stream lazily: a :class:`RemoteResult` fetches PULL batches on
demand, so consuming the first record of a large result transfers one
batch, not the whole thing.  Server-side errors arrive as ERROR frames
and re-raise as the *same* driver exception classes
(:func:`~repro.graphdb.server.protocol.exception_for`), so remote and
in-process failure handling is identical.

The client is deliberately synchronous (blocking sockets): the driver
surface it mirrors is synchronous, and the asyncio half lives entirely
in the server.
"""

from __future__ import annotations

import socket

from repro.exceptions import GraphError, TransactionError
from repro.graphdb.api.result import Record
from repro.graphdb.backends import BackendProfile, NEO4J_LIKE
from repro.graphdb.server import protocol as wire

#: Records fetched per PULL round-trip (overridable per session).
DEFAULT_FETCH_SIZE = 1024


def parse_url(url: str) -> tuple[str, int]:
    """``repro://host[:port]`` -> ``(host, port)``."""
    if not url.startswith("repro://"):
        raise GraphError(f"not a repro:// URL: {url!r}")
    rest = url[len("repro://"):].rstrip("/")
    if not rest:
        raise GraphError(f"missing host in {url!r}")
    host, _, port_text = rest.rpartition(":")
    if not host:
        return rest, wire.DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError:
        raise GraphError(f"bad port in {url!r}") from None
    return host, port


class _Connection:
    """One framed TCP connection: transport + request/response."""

    def __init__(self, host: str, port: int, timeout: float | None):
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise GraphError(
                f"cannot connect to repro://{host}:{port}: {exc}"
            ) from exc
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rb")
        self._closed = False

    def send(self, payload: bytes) -> None:
        try:
            self._sock.sendall(wire.pack_frame(payload))
        except OSError as exc:
            self.close()
            raise GraphError(f"server connection lost: {exc}") from exc

    def recv(self) -> tuple[int, dict]:
        try:
            header = self._read_exactly(wire.FRAME_HEADER_BYTES)
            payload = self._read_exactly(wire.frame_length(header))
        except OSError as exc:
            self.close()
            raise GraphError(f"server connection lost: {exc}") from exc
        return wire.decode_message(wire.check_frame(header, payload))

    def _read_exactly(self, n: int) -> bytes:
        data = self._file.read(n)
        if data is None or len(data) != n:
            self.close()
            raise GraphError(
                "server closed the connection mid-frame"
            )
        return data

    def request(self, payload: bytes) -> dict:
        """Send one message, expect SUCCESS; ERROR re-raises."""
        self.send(payload)
        msg_type, fields = self.recv()
        if msg_type == wire.MSG_ERROR:
            raise wire.exception_for(fields["code"], fields["message"])
        if msg_type != wire.MSG_SUCCESS:
            raise wire.ProtocolError(
                f"expected SUCCESS, got {wire.MSG_NAMES[msg_type]!r}"
            )
        return fields["meta"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - teardown is best-effort
            pass

    @property
    def closed(self) -> bool:
        return self._closed


class RemoteDatabase:
    """A server-backed database: a session factory over ``repro://``.

    Each :meth:`session` opens its own TCP connection (one server-side
    session per connection, like real drivers pool); the database
    object itself holds no socket, only the address and the handshake
    metadata of a probe connection.
    """

    def __init__(
        self,
        url: str,
        profile: BackendProfile = NEO4J_LIKE,
        readonly: bool = False,
        connect_timeout: float | None = 10.0,
    ):
        self.url = url
        self.host, self.port = parse_url(url)
        self.profile = profile  # accepted for surface parity; unused
        self._connect_timeout = connect_timeout
        self._closed = False
        # Probe handshake: fail fast on a bad address or version
        # mismatch, and learn the server's readonly mode up front.
        conn = _Connection(self.host, self.port, connect_timeout)
        try:
            self.server_info = conn.request(wire.encode_hello(
                {"app": "repro-driver"}
            ))
        finally:
            conn.send(wire.encode_simple(wire.MSG_GOODBYE))
            conn.close()
        #: True when writes are rejected - either the server is
        #: read-only or this handle was opened with ``readonly=True``.
        self.readonly = bool(self.server_info.get("readonly")) or readonly
        #: No local graph/store: everything goes over the wire.
        self.graph = None
        self.store = None

    @property
    def durable(self) -> bool:
        return True  # durability lives server-side

    def session(self, fetch_size: int = DEFAULT_FETCH_SIZE,
                **_ignored) -> "RemoteSession":
        """A new unit-of-work session on its own connection.

        Extra keyword arguments (``profile=``, ``parallelism=``, ...)
        are accepted for parity with the in-process surface and
        ignored: those knobs live server-side.
        """
        self._require_open()
        return RemoteSession(self, fetch_size=fetch_size)

    def metrics(self) -> dict:
        raise GraphError(
            "remote databases expose metrics via the server's HTTP "
            "/metrics endpoint, not the driver"
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise GraphError("database is closed")

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteDatabase {self.url}>"


class RemoteSession:
    """One unit-of-work handle on a :class:`RemoteDatabase`."""

    def __init__(self, database: RemoteDatabase, fetch_size: int):
        self._database = database
        self._fetch_size = max(1, fetch_size)
        self._conn = _Connection(
            database.host, database.port, database._connect_timeout
        )
        self._conn.request(wire.encode_hello({"app": "repro-driver"}))
        self._open_result: RemoteResult | None = None
        self._transaction: RemoteTransaction | None = None
        self._last_summary: RemoteSummary | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self,
        query: str,
        parameters: dict[str, object] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        trace: bool = False,
        parallelism: int | None = None,
        **params: object,
    ) -> "RemoteResult":
        """Execute ``query`` on the server; returns a lazy cursor.

        ``timeout`` / ``max_rows`` arm the server-side execution
        guard (the server may clamp them tighter); the corresponding
        :class:`~repro.exceptions.QueryTimeoutError` /
        :class:`~repro.exceptions.ResourceLimitError` raise here
        exactly as they would in-process.  ``trace`` is not available
        over the wire; ``parallelism`` is a server-side knob and is
        ignored.
        """
        self._require_open()
        if trace:
            raise GraphError(
                "trace=True is not supported over remote connections"
            )
        del parallelism  # server-side configuration
        self._finish_open_result()
        bound = {**(parameters or {}), **params}
        options: dict[str, object] = {}
        if timeout is not None:
            options["timeout"] = timeout
        if max_rows is not None:
            options["max_rows"] = max_rows
        meta = self._conn.request(
            wire.encode_run(query, bound, options)
        )
        result = RemoteResult(self, query, bound, meta)
        self._open_result = result
        return result

    def explain(
        self,
        query: str,
        analyze: bool = False,
        parameters: dict[str, object] | None = None,
        **params: object,
    ) -> str:
        """The server-side plan for ``query`` (``analyze=True`` runs it)."""
        self._require_open()
        self._finish_open_result()
        bound = {**(parameters or {}), **params}
        meta = self._conn.request(wire.encode_run(
            query, bound, {"explain": 2 if analyze else 1}
        ))
        return meta["plan"]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin_tx(self) -> "RemoteTransaction":
        """Open an explicit server-side transaction.

        Waits for the server's single writer slot; rejected with
        :class:`~repro.exceptions.TransactionError` on read-only
        handles (client-side) and read-only servers (server-side).
        """
        self._require_open()
        if self._database.readonly:
            raise TransactionError(
                "database is read-only; writes are rejected"
            )
        if (
            self._transaction is not None
            and not self._transaction.closed
        ):
            raise TransactionError(
                "this session already has an open transaction"
            )
        self._finish_open_result()
        self._conn.request(wire.encode_simple(wire.MSG_BEGIN))
        self._transaction = RemoteTransaction(self)
        return self._transaction

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Settle the open cursor, roll back any open tx, hang up."""
        if self._closed:
            return
        self._closed = True
        try:
            if not self._conn.closed:
                if (
                    self._transaction is not None
                    and not self._transaction.closed
                ):
                    self._transaction._closed = True
                    self._conn.request(
                        wire.encode_simple(wire.MSG_ROLLBACK)
                    )
                self._conn.send(wire.encode_simple(wire.MSG_GOODBYE))
        except GraphError:  # pragma: no cover - teardown best-effort
            pass
        finally:
            self._conn.close()
        self._transaction = None

    def last_summary(self) -> "RemoteSummary | None":
        return self._last_summary

    def _finish_open_result(self) -> None:
        # Same cursor-isolation contract as the in-process session: a
        # new query first buffers the previous result's remaining
        # records client-side (the server drops its buffer on RUN).
        if self._open_result is not None:
            self._open_result._detach()

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("session is closed")

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _RemoteMetrics:
    """Placeholder work counters: remote executions count server-side
    (scrape the server's ``/metrics`` endpoint for the real numbers)."""

    __slots__ = ()

    def as_dict(self) -> dict:
        return {}


class RemoteSummary:
    """What one consumed remote execution did (server-reported)."""

    __slots__ = (
        "query", "parameters", "columns", "rows", "epoch", "mode",
        "latency_ms", "elapsed_ms", "plan_digest", "metrics", "trace",
    )

    def __init__(self, query, parameters, columns, meta):
        self.query = query
        self.parameters = parameters
        self.columns = columns
        self.rows = meta.get("rows", 0)
        #: The graph mutation epoch this execution was pinned to -
        #: every row of the result came from this exact version.
        self.epoch = meta.get("epoch")
        self.mode = meta.get("mode", "tuple")
        self.latency_ms = meta.get("latency_ms", 0.0)
        self.elapsed_ms = meta.get("elapsed_ms", 0.0)
        self.plan_digest = meta.get("plan_digest", "")
        self.metrics = _RemoteMetrics()
        self.trace = None

    @property
    def plan(self) -> str:
        return (
            "(plan not carried over the wire; "
            "use session.explain(query, analyze=True))"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RemoteSummary rows={self.rows} epoch={self.epoch}>"
        )


class RemoteResult:
    """Lazy cursor over one remote execution (batched PULL streaming)."""

    def __init__(self, session: RemoteSession, query: str,
                 parameters: dict, meta: dict):
        self._session = session
        self._query = query
        self._parameters = parameters
        self._columns = list(meta.get("columns", []))
        self.epoch = meta.get("epoch")
        self._buffer: list[Record] = []
        self._pos = 0
        self._exhausted = False
        self._summary: RemoteSummary | None = None

    def keys(self) -> list[str]:
        return list(self._columns)

    def __iter__(self):
        while True:
            record = self._next_record()
            if record is None:
                return
            yield record

    def _next_record(self) -> Record | None:
        if self._pos < len(self._buffer):
            record = self._buffer[self._pos]
            self._pos += 1
            return record
        if not self._exhausted:
            self._fetch_batch()
            if self._pos < len(self._buffer):
                record = self._buffer[self._pos]
                self._pos += 1
                return record
        return None

    def _fetch_batch(self) -> None:
        session = self._session
        conn = session._conn
        conn.send(wire.encode_pull(session._fetch_size))
        while True:
            msg_type, fields = conn.recv()
            if msg_type == wire.MSG_RECORD:
                self._buffer.append(
                    Record(self._columns, fields["values"])
                )
            elif msg_type == wire.MSG_SUCCESS:
                meta = fields["meta"]
                if not meta.get("has_more"):
                    self._settle(meta)
                return
            elif msg_type == wire.MSG_ERROR:
                self._exhausted = True
                raise wire.exception_for(
                    fields["code"], fields["message"]
                )
            else:
                raise wire.ProtocolError(
                    f"unexpected {wire.MSG_NAMES[msg_type]!r} "
                    "during PULL"
                )

    def _settle(self, meta: dict) -> None:
        self._exhausted = True
        self._summary = RemoteSummary(
            self._query, dict(self._parameters), self._columns, meta
        )
        session = self._session
        if session._open_result is self:
            session._open_result = None
        session._last_summary = self._summary

    def single(self) -> Record:
        """Exactly one record; raises :class:`GraphError` otherwise."""
        from repro.exceptions import QueryError

        first = self._next_record()
        if first is None:
            raise QueryError("expected a single record, got none")
        second = self._next_record()
        if second is not None:
            self._pos -= 2  # keep both readable for debugging
            raise QueryError(
                "expected a single record, got more than one"
            )
        return first

    def values(self) -> list[list]:
        return [record.values() for record in self]

    def records(self) -> list[Record]:
        return list(self)

    def consume(self) -> RemoteSummary:
        """Discard unread records and return the run's summary."""
        if self._summary is None:
            if not self._exhausted:
                # DISCARD drops the server buffer in one round-trip
                # (no point streaming records we are throwing away).
                meta = self._session._conn.request(
                    wire.encode_simple(wire.MSG_DISCARD)
                )
                self._settle(meta)
        self._pos = len(self._buffer)
        assert self._summary is not None
        return self._summary

    def _detach(self) -> None:
        """Buffer everything left so the session can run a new query."""
        while not self._exhausted:
            self._fetch_batch()


class RemoteTransaction:
    """Explicit server-side transaction bound to one session."""

    def __init__(self, session: RemoteSession):
        self._session = session
        self._closed = False

    def run(self, query, parameters=None, **params):
        """Run a query inside the transaction (sees its own writes)."""
        self._require_open()
        return self._session.run(query, parameters, **params)

    # -- mutations (MUTATE frames, WAL vocabulary) ---------------------
    def add_vertex(self, labels, properties=None) -> int:
        if isinstance(labels, str):
            labels = [labels]
        meta = self._mutate("add_vertex", [list(labels), properties or {}])
        return meta["id"]

    def add_edge(self, src: int, dst: int, label: str,
                 properties=None) -> int:
        meta = self._mutate(
            "add_edge", [src, dst, label, properties or {}]
        )
        return meta["id"]

    def set_property(self, vid: int, name: str, value) -> None:
        self._mutate("set_property", [vid, name, value])

    def remove_property(self, vid: int, name: str) -> None:
        self._mutate("remove_property", [vid, name])

    def remove_edge(self, eid: int) -> None:
        self._mutate("remove_edge", [eid])

    def remove_vertex(self, vid: int) -> None:
        self._mutate("remove_vertex", [vid])

    def create_property_index(self, label: str, prop: str) -> None:
        self._mutate("create_property_index", [label, prop])

    def _mutate(self, op: str, args: list) -> dict:
        self._require_open()
        self._session._finish_open_result()
        return self._session._conn.request(wire.encode_mutate(op, args))

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def commit(self) -> None:
        """Commit; returns once the server made the commit durable
        (the acknowledgement rides the server's group-commit fsync)."""
        self._require_open()
        self._session._finish_open_result()
        self._closed = True
        self._session._conn.request(wire.encode_simple(wire.MSG_COMMIT))

    def rollback(self) -> None:
        self._require_open()
        self._session._finish_open_result()
        self._closed = True
        self._session._conn.request(
            wire.encode_simple(wire.MSG_ROLLBACK)
        )

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction is closed")

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if not self._closed:
            self.rollback()
