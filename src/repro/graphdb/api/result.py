"""Driver result surface: :class:`Record`, :class:`Result`,
:class:`ResultSummary`.

A :class:`Result` is a *lazy* cursor over one query execution: rows
are pulled from the executor's generator pipeline on demand, so
consuming only the first record of an un-aggregated query never
materializes the full match (``LIMIT``-free point lookups stay cheap).
Each row arrives as a :class:`Record` - an ordered, field-addressable
view (`record["name"]`, ``record[0]``, ``record.data()``).

``consume()`` drains whatever the caller did not read and returns a
:class:`ResultSummary` carrying the work counters, the simulated
backend latency, and the executed plan rendered with estimated *and*
actual rows per step (the driver always runs with step counting on).
Exhausting the cursor computes the same summary, so iterating to the
end then calling ``consume()`` costs nothing extra.

A session keeps at most one result open: starting a new query first
detaches the previous result by buffering its remaining records, which
also settles its metrics (the underlying
:class:`~repro.graphdb.session.GraphSession` counts work globally, so
attribution requires draining before the next query starts).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterator

from repro.exceptions import QueryError, ResourceLimitError
from repro.graphdb import faults, observe
from repro.graphdb.metrics import ExecutionMetrics
from repro.graphdb.observe.trace import Trace

_QUERIES = observe.REGISTRY.counter(
    "repro_queries_total", "Driver query executions settled."
)
_QUERY_ROWS = observe.REGISTRY.counter(
    "repro_query_rows_total", "Records produced by driver executions."
)
_QUERY_SECONDS = observe.REGISTRY.histogram(
    "repro_query_seconds",
    help="Driver query wall time, run() to settled cursor.",
)


class Record:
    """One result row: ordered values addressable by column name."""

    __slots__ = ("_keys", "_values")

    def __init__(self, keys: list[str], values: tuple):
        self._keys = keys
        self._values = values

    def keys(self) -> list[str]:
        return list(self._keys)

    def values(self) -> list:
        return list(self._values)

    def items(self) -> list[tuple[str, object]]:
        return list(zip(self._keys, self._values))

    def data(self) -> dict[str, object]:
        """The record as a plain ``{column: value}`` dict."""
        return dict(zip(self._keys, self._values))

    def get(self, key: str, default: object = None) -> object:
        try:
            return self._values[self._keys.index(key)]
        except ValueError:
            return default

    def __getitem__(self, key: str | int) -> object:
        if isinstance(key, str):
            try:
                return self._values[self._keys.index(key)]
            except ValueError:
                raise KeyError(key) from None
        return self._values[key]

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return (
                other._keys == self._keys
                and other._values == self._values
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{k}={v!r}" for k, v in zip(self._keys, self._values)
        )
        return f"<Record {inner}>"


class ResultSummary:
    """What one consumed query execution did."""

    __slots__ = (
        "query", "parameters", "columns", "rows", "metrics",
        "latency_ms", "elapsed_ms", "plan_digest", "trace", "mode",
        "_plan", "_plan_actual", "_plan_text",
    )

    def __init__(
        self,
        query: str,
        parameters: dict[str, object],
        columns: list[str],
        rows: int,
        metrics: ExecutionMetrics,
        latency_ms: float,
        plan,
        plan_actual: list[int],
        elapsed_ms: float = 0.0,
        trace: Trace | None = None,
        mode: str = "tuple",
    ):
        self.query = query
        self.parameters = parameters
        #: Output column names, in RETURN order.
        self.columns = columns
        #: Records produced (and pulled) by this execution.
        self.rows = rows
        #: Work counters (vertex/property reads, traversals, pages).
        self.metrics = metrics
        #: Simulated backend latency for those counters.
        self.latency_ms = latency_ms
        #: Real wall-clock time, ``session.run()`` to settled cursor.
        self.elapsed_ms = elapsed_ms
        #: Short digest of the executed plan's shape (keys the
        #: per-plan est-vs-actual observation store).
        self.plan_digest = plan.fingerprint
        #: The span tree recorded with ``session.run(..., trace=True)``
        #: (``None`` on untraced executions).
        self.trace = trace
        #: Which pipeline ran this execution: ``"vectorized"`` (the
        #: batch path) or ``"tuple"`` (the generator pipeline).
        self.mode = mode
        self._plan = plan
        self._plan_actual = plan_actual
        self._plan_text: str | None = None

    @property
    def plan(self) -> str:
        """The executed plan, one step per line, with estimated vs
        actual row counts (``EXPLAIN ANALYZE`` rendering).

        Rendered lazily on first access: hot loops that ``consume()``
        every execution (the workload runner, the API benchmark) never
        pay for the string formatting.
        """
        if self._plan_text is None:
            self._plan_text = self._plan.describe(
                actual=self._plan_actual, mode=self.mode
            )
        return self._plan_text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultSummary rows={self.rows} "
            f"latency_ms={self.latency_ms:.3f}>"
        )


class Result:
    """Lazy cursor over one query execution (iterate to stream)."""

    def __init__(
        self,
        owner,
        query: str,
        parameters: dict[str, object],
        columns: list[str],
        rows: Iterator[tuple],
        plan,
        step_counts: list[int],
        trace: Trace | None = None,
        report=None,
    ):
        self._owner = owner
        self._query = query
        self._parameters = parameters
        self._columns = columns
        self._rows = rows
        self._plan = plan
        self._step_counts = step_counts
        self._trace = trace
        self._report = report
        self._started = time.perf_counter()
        #: Records pulled but not yet handed to the caller (filled
        #: when the session detaches this result to run a new query).
        #: A deque: draining a large detached result pops from the
        #: left once per record, which must stay O(1).
        self._buffer: deque[Record] = deque()
        self._yielded = 0
        self._exhausted = False
        self._summary: ResultSummary | None = None
        #: Process-global fault/retry counters at creation; _settle
        #: reports the delta, attributing storage-layer retry activity
        #: to the execution that was the open unit of work.
        self._fault_base = faults.REGISTRY.counters()

    # ------------------------------------------------------------------
    # Cursor
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Output column names, in RETURN order."""
        return list(self._columns)

    def __iter__(self) -> Iterator[Record]:
        while True:
            record = self._next_record()
            if record is None:
                return
            yield record

    def _next_record(self) -> Record | None:
        if self._buffer:
            return self._buffer.popleft()
        if self._exhausted:
            return None
        try:
            values = next(self._rows)
        except StopIteration:
            self._settle()
            return None
        self._yielded += 1
        return Record(self._columns, values)

    def single(self) -> Record:
        """Exactly one record; raises :class:`QueryError` otherwise."""
        first = self._next_record()
        if first is None:
            raise QueryError("expected a single record, got none")
        second = self._next_record()
        if second is not None:
            # Put them back so the cursor stays usable for debugging.
            self._buffer.extendleft([second, first])
            raise QueryError(
                "expected a single record, got more than one"
            )
        return first

    def values(self) -> list[list]:
        """Remaining records as plain value lists (drains the cursor)."""
        return [record.values() for record in self]

    def records(self) -> list[Record]:
        """Remaining records, materialized (drains the cursor)."""
        return list(self)

    def consume(self) -> ResultSummary:
        """Discard any unread records and return the run's summary."""
        self._drain(keep=False)
        self._buffer.clear()
        assert self._summary is not None
        return self._summary

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def _detach(self) -> None:
        """Buffer everything left so a new query can start.

        Called by the owning session before it runs the next query:
        the shared metrics counter must be settled for this execution
        before another one starts adding to it.
        """
        self._drain(keep=True)

    def _drain(self, keep: bool) -> None:
        """Pull the pipeline dry, optionally keeping the records.

        ``keep=False`` (the consume path) counts rows without
        constructing Record objects that would be thrown away.
        ``keep=True`` is the detach path - the caller has moved on to
        a new query - so a guardrail trip (deadline expiry, row cap)
        on an *abandoned* cursor settles quietly instead of surfacing
        from an unrelated ``session.run`` call; anyone actively
        iterating or consuming still sees the error.
        """
        while not self._exhausted:
            try:
                values = next(self._rows)
            except StopIteration:
                self._settle()
                break
            except ResourceLimitError:
                if not keep:
                    self._settle()
                    raise
                self._settle()
                break
            self._yielded += 1
            if keep:
                self._buffer.append(Record(self._columns, values))

    def _settle(self) -> None:
        """The pipeline is exhausted: collect metrics into a summary."""
        self._exhausted = True
        elapsed_ms = (time.perf_counter() - self._started) * 1000.0
        graph_session = self._owner._graph_session
        metrics = graph_session.reset_metrics()
        metrics.rows = self._yielded
        metrics.queries = 1
        counters = faults.REGISTRY.counters()
        metrics.io_retries = (
            counters["retries"] - self._fault_base["retries"]
        )
        metrics.faults_injected = (
            counters["injected"] - self._fault_base["injected"]
        )
        plan = self._plan
        mode = self._report.mode if self._report is not None else "tuple"
        if self._trace is not None:
            self._trace.complete(
                plan.step_texts(),
                [step.est_rows for step in plan.steps],
                self._step_counts,
                self._yielded,
                mode=mode,
            )
        _QUERIES.inc()
        _QUERY_ROWS.inc(self._yielded)
        _QUERY_SECONDS.observe(elapsed_ms / 1000.0)
        if observe.REGISTRY.enabled:
            step_counts = self._step_counts
            observe.REGISTRY.plans.record(
                plan.fingerprint,
                lambda: [
                    (
                        text,
                        step.est_rows,
                        step_counts[i] if i < len(step_counts) else 0,
                    )
                    for i, (step, text) in enumerate(
                        zip(plan.steps, plan.step_texts())
                    )
                ],
            )
        self._summary = ResultSummary(
            query=self._query,
            parameters=dict(self._parameters),
            columns=list(self._columns),
            rows=self._yielded,
            metrics=metrics,
            latency_ms=graph_session.profile.latency_ms(metrics),
            plan=plan,
            plan_actual=self._step_counts,
            elapsed_ms=elapsed_ms,
            trace=self._trace,
            mode=mode,
        )
        if observe.EVENTS.slow_query_ms is not None:
            observe.EVENTS.slow_query(
                elapsed_ms,
                self._query,
                plan.fingerprint,
                self._yielded,
                metrics.as_dict(),
            )
        self._owner._result_settled(self)
