"""Driver-style public API: connect, parameterize, stream, commit.

The package mirrors the driver/session/result model real graph
databases expose (Neo4j's Python driver being the closest reference,
fitting the simulated backend profiles):

* :func:`connect` opens a graph, a durable data directory, or a
  snapshot file as a :class:`Database`;
* :meth:`Database.session` hands out :class:`Session` units of work;
* :meth:`Session.run` executes a Cypher-subset query with ``$name``
  parameters and returns a lazy :class:`Result` cursor of
  :class:`Record` rows - ``consume()`` yields a
  :class:`ResultSummary` with metrics and the executed plan;
* :meth:`Session.begin_tx` opens an explicit :class:`Transaction`
  (undo-log rollback in memory, BEGIN/COMMIT framing in the WAL).

The lower layers (:class:`~repro.graphdb.session.GraphSession`,
:class:`~repro.graphdb.query.executor.Executor`) remain public for
instrumentation-level work; this package is the supported surface for
applications.
"""

from repro.exceptions import (
    GraphError,
    ParameterError,
    QueryError,
    QuerySyntaxError,
    TransactionError,
)
from repro.graphdb.api.database import Database, connect
from repro.graphdb.api.result import Record, Result, ResultSummary
from repro.graphdb.api.session import Session
from repro.graphdb.api.transaction import Transaction
from repro.graphdb.observe import ObserveConfig, Trace, render_prometheus

__all__ = [
    "Database",
    "GraphError",
    "ObserveConfig",
    "ParameterError",
    "QueryError",
    "QuerySyntaxError",
    "Record",
    "Result",
    "ResultSummary",
    "Session",
    "Trace",
    "Transaction",
    "TransactionError",
    "connect",
    "render_prometheus",
]
