"""The driver :class:`Session`: parameterized queries and transactions.

A session owns one instrumented
:class:`~repro.graphdb.session.GraphSession` (page cache, work
counters) and one :class:`~repro.graphdb.query.executor.Executor`
(plan cache via the graph's statistics), and exposes the surface real
graph drivers do:

* :meth:`Session.run` - execute a Cypher-subset query with ``$name``
  parameters bound per call.  Plans are cached per query *shape*, so a
  hot parameterized query parses and plans once and then only binds;
* :meth:`Session.begin_tx` - open an explicit
  :class:`~repro.graphdb.api.transaction.Transaction`;
* a lazy :class:`~repro.graphdb.api.result.Result` cursor per query,
  with ``consume()`` returning the run's metrics and executed plan.

Sessions are cheap; create one per unit of work and close it (or use
``with``).  A session keeps at most one result streaming at a time:
starting a new query buffers the previous result's remaining records
first, settling its metrics.
"""

from __future__ import annotations

from repro.exceptions import TransactionError
from repro.graphdb.api.result import Result
from repro.graphdb.api.transaction import Transaction
from repro.graphdb.observe.trace import Trace
from repro.graphdb.query.ast import Query, query_text
from repro.graphdb.query.executor import ExecutionGuard, Executor
from repro.graphdb.query.vectorized import ExecutionReport
from repro.graphdb.session import GraphSession


class Session:
    """One unit-of-work handle on a :class:`~repro.graphdb.api.
    database.Database`."""

    def __init__(
        self,
        database,
        profile=None,
        cache=None,
        cost_based: bool = True,
        parallelism: int | None = None,
        parallel_threshold: int | None = None,
    ):
        self._database = database
        self._graph_session = GraphSession(
            database.graph, profile or database.profile, cache
        )
        self._executor = Executor(
            self._graph_session,
            cost_based=cost_based,
            parallelism=(
                parallelism if parallelism is not None
                else getattr(database, "parallelism", None)
            ),
            parallel_threshold=parallel_threshold,
        )
        self._open_result: Result | None = None
        self._transaction: Transaction | None = None
        self._last_summary = None
        self._closed = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self,
        query: str | Query,
        parameters: dict[str, object] | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        trace: bool = False,
        parallelism: int | None = None,
        **params: object,
    ) -> Result:
        """Execute a query; parameters come from ``parameters`` and/or
        keyword arguments (keywords win on collision)::

            session.run("MATCH (d:Drug {id: $id}) RETURN d.name", id=7)

        ``timeout`` (seconds) arms a wall-clock deadline checked inside
        the executor's streaming loop - expiry raises
        :class:`~repro.exceptions.QueryTimeoutError` from whichever
        call is pulling the cursor.  ``max_rows`` caps the number of
        records the query may *produce*; exceeding it raises
        :class:`~repro.exceptions.ResourceLimitError` (unlike
        ``LIMIT``, which silently stops).  ``trace=True`` records a
        span tree (parse -> plan -> execute, with per-operator child
        spans) surfaced as ``summary.trace`` once the cursor settles -
        the per-step timing adds overhead, so it is opt-in per query.
        ``parallelism`` overrides the session's worker count for this
        query only (see ``connect(parallelism=)`` / ``REPRO_PARALLEL``;
        values above 1 enable morsel-parallel execution for qualifying
        scans, and ``summary.mode`` reports ``"parallel"`` when it ran).
        """
        self._require_open()
        bound = {**(parameters or {}), **params}
        self._finish_open_result()
        guard = (
            ExecutionGuard(timeout=timeout, max_rows=max_rows)
            if timeout is not None or max_rows is not None
            else None
        )
        trace_obj = (
            Trace(query if isinstance(query, str) else query_text(query))
            if trace
            else None
        )
        step_counts: list[int] = []
        report = ExecutionReport()
        executor = self._executor
        previous_parallelism = executor.parallelism
        if parallelism is not None:
            from repro.graphdb.query.parallel import resolve_parallelism

            executor.parallelism = resolve_parallelism(parallelism)
        try:
            # The serial/parallel decision settles inside stream()
            # (pipeline construction is eager; only rows are lazy), so
            # restoring the session default here is safe.
            parsed, plan, columns, rows = executor.stream(
                query,
                bound,
                step_counts=step_counts,
                guard=guard,
                trace=trace_obj,
                report=report,
            )
        finally:
            executor.parallelism = previous_parallelism
        text = query if isinstance(query, str) else query_text(parsed)
        result = Result(
            self, text, bound, columns, rows, plan, step_counts,
            trace=trace_obj, report=report,
        )
        self._open_result = result
        return result

    def explain(
        self,
        query: str | Query,
        analyze: bool = False,
        parameters: dict[str, object] | None = None,
        **params: object,
    ) -> str:
        """The plan for ``query`` (``analyze=True`` also executes it)."""
        self._require_open()
        self._finish_open_result()
        bound = {**(parameters or {}), **params}
        return self._executor.explain(
            query, analyze=analyze, parameters=bound or None
        )

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin_tx(self) -> Transaction:
        """Open an explicit transaction (one at a time per graph).

        Read-only databases (``connect(..., readonly=True)``) refuse:
        their graph is a recovered point-in-time view with no WAL
        attached, so any mutation would silently never be durable.
        """
        self._require_open()
        if getattr(self._database, "readonly", False):
            raise TransactionError(
                "database was opened read-only; writes are rejected "
                "(reopen without readonly=True to mutate)"
            )
        if self._transaction is not None and not self._transaction.closed:
            raise TransactionError(
                "this session already has an open transaction"
            )
        # Settle any streaming result first: its remaining records
        # must capture pre-transaction state, not rows the transaction
        # later mutates (or rolls back).
        self._finish_open_result()
        self._transaction = Transaction(self)
        return self._transaction

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Settle the open result and roll back any open transaction."""
        if self._closed:
            return
        self._finish_open_result()
        if self._transaction is not None and not self._transaction.closed:
            self._transaction.rollback()
        self._transaction = None
        self._closed = True

    def last_summary(self):
        """The most recently settled result's summary (or ``None``)."""
        return self._last_summary

    def _store(self):
        return self._database.store

    def _finish_open_result(self) -> None:
        if self._open_result is not None:
            self._open_result._detach()

    def _result_settled(self, result: Result) -> None:
        if self._open_result is result:
            self._open_result = None
        self._last_summary = result._summary

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("session is closed")

    def __enter__(self) -> Session:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
