""":func:`connect` and :class:`Database`: the driver's entry point.

``connect`` accepts anything the stack can serve queries from and
normalizes it into a :class:`Database`:

* a live :class:`~repro.graphdb.graph.PropertyGraph` - an in-memory
  database (no durability);
* a **data directory** - recovered through the storage subsystem
  (latest snapshot + WAL replay) and opened for writing: every
  mutation is write-ahead logged, transactions get BEGIN/COMMIT
  framing, :meth:`Database.checkpoint` compacts.  ``readonly=True``
  recovers a point-in-time graph without touching the directory;
* a **snapshot file** (``.rpgs``) - loaded as an in-memory graph;
* a ``repro://host:port`` **URL** - a
  :class:`~repro.graphdb.api.remote.RemoteDatabase` speaking the wire
  protocol to a ``repro serve`` process (same Session/Result surface,
  rows streamed lazily in PULL batches).

A :class:`Database` is a session factory::

    from repro.graphdb import connect

    with connect("./med-data") as db:
        with db.session() as session:
            record = session.run(
                "MATCH (d:Drug {id: $id}) RETURN d.name AS name", id=7
            ).single()
            print(record["name"])
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import GraphError
from repro.graphdb import observe as observe_mod
from repro.graphdb.api.session import Session
from repro.graphdb.backends import BackendProfile, NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph


def connect(
    target: PropertyGraph | str | Path,
    profile: BackendProfile = NEO4J_LIKE,
    *,
    create: bool = True,
    sync: str = "batch",
    readonly: bool = False,
    observe: "observe_mod.ObserveConfig | dict | str | Path | None" = None,
    parallelism: int | None = None,
) -> "Database":
    """Open ``target`` (graph, data directory, or snapshot file).

    ``profile`` sets the default simulated backend for sessions;
    ``create``/``sync`` apply to writable data directories (see
    :class:`~repro.graphdb.storage.GraphStore`); ``readonly=True``
    recovers a directory without creating, truncating, or logging.
    ``observe`` configures the process-global observability layer: an
    :class:`~repro.graphdb.observe.ObserveConfig` (or a dict of its
    fields, or a bare event-log path) that can point the JSONL event
    sink somewhere, arm the slow-query log, or switch the metrics
    registry off entirely - see :mod:`repro.graphdb.observe`.
    ``parallelism`` sets the default worker count for this database's
    sessions (values above 1 enable morsel-parallel execution for
    qualifying scans; unset, the ``REPRO_PARALLEL`` environment
    variable applies, and serial remains the default).
    """
    if observe is not None:
        observe_mod.configure(observe)
    if isinstance(target, PropertyGraph):
        return Database(
            target, store=None, profile=profile, parallelism=parallelism
        )
    if isinstance(target, str) and target.startswith("repro://"):
        from repro.graphdb.api.remote import RemoteDatabase

        return RemoteDatabase(target, profile=profile, readonly=readonly)
    path = Path(target)
    if path.is_file() or (
        not path.exists() and path.suffix == ".rpgs"
    ):
        from repro.graphdb.storage import read_snapshot

        return Database(
            read_snapshot(path), store=None, profile=profile,
            parallelism=parallelism,
        )
    if readonly:
        from repro.graphdb.storage import recover_graph
        from repro.graphdb.storage.recovery import RecoveryManager

        manager = RecoveryManager(path)
        if not path.is_dir() or not (
            manager.snapshot_generations() or manager.wal_generations()
        ):
            raise GraphError(f"no graph store at {path}")
        return Database(
            recover_graph(path), store=None, profile=profile,
            parallelism=parallelism, readonly=True,
        )
    from repro.graphdb.storage import GraphStore

    store = GraphStore.open(path, create=create, sync=sync)
    return Database(
        store.graph, store=store, profile=profile, parallelism=parallelism
    )


class Database:
    """A queryable graph plus (optionally) its durable store."""

    def __init__(
        self,
        graph: PropertyGraph,
        store=None,
        profile: BackendProfile = NEO4J_LIKE,
        parallelism: int | None = None,
        readonly: bool = False,
    ):
        self.graph = graph
        #: The durable :class:`~repro.graphdb.storage.GraphStore`, or
        #: ``None`` for in-memory / read-only databases.
        self.store = store
        #: Default backend profile for sessions.
        self.profile = profile
        #: Default worker count for sessions (``None`` defers to the
        #: ``REPRO_PARALLEL`` environment variable, then to serial).
        self.parallelism = parallelism
        #: ``connect(..., readonly=True)``: sessions refuse to open
        #: transactions, so a point-in-time view cannot be mutated by
        #: accident (the writes would silently never be logged).
        self.readonly = readonly
        self._closed = False

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        profile: BackendProfile | None = None,
        cache=None,
        cost_based: bool = True,
        parallelism: int | None = None,
        parallel_threshold: int | None = None,
    ) -> Session:
        """A new unit-of-work session (use as a context manager).

        ``parallelism`` overrides the database default for this
        session; ``parallel_threshold`` sets the minimum estimated
        scan rows before morsel dispatch engages."""
        self._require_open()
        return Session(
            self, profile=profile, cache=cache, cost_based=cost_based,
            parallelism=parallelism,
            parallel_threshold=parallel_threshold,
        )

    # ------------------------------------------------------------------
    # Durability passthrough
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        return self.store is not None

    def checkpoint(self) -> Path:
        """Compact the WAL into a fresh snapshot (durable stores only)."""
        self._require_open()
        if self.store is None:
            raise GraphError("database has no backing store")
        return self.store.checkpoint()

    def sync(self) -> None:
        """Force buffered WAL records to disk (no-op when in-memory)."""
        self._require_open()
        if self.store is not None:
            self.store.sync()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """A consistent snapshot of the process-global metrics registry.

        Counters, gauges, histograms, and per-plan est-vs-actual
        observations populated by every layer of the engine (WAL,
        checkpoint, recovery, plan cache, query execution) - the same
        payload ``repro metrics`` prints; for a Prometheus text
        exposition use :func:`repro.graphdb.observe.render_prometheus`.
        The registry is process-global, so the snapshot covers every
        database in the process, not just this one.
        """
        return observe_mod.REGISTRY.snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush and detach the backing store, if any."""
        if self._closed:
            return
        self._closed = True
        if self.store is not None:
            self.store.close()

    def _require_open(self) -> None:
        if self._closed:
            raise GraphError("database is closed")

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "durable" if self.store is not None else "in-memory"
        return f"<Database {kind} {self.graph.summary()}>"
