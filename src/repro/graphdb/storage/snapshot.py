"""Versioned binary snapshots of a :class:`PropertyGraph`.

File layout (all integers little-endian)::

    +--------------------------------------------------------------+
    | magic "RPGSNAP1" (8) | version u16 | flags u16 | nsect u32   |
    | table_crc u32                                                |
    | section table: nsect * (id u8, offset u64, length u64,       |
    |                         crc32 u32)                           |
    | section payloads ...                                         |
    +--------------------------------------------------------------+

``table_crc`` covers the section table, and every section entry carries
the CRC-32 of its payload, so a torn or bit-flipped snapshot is always
detected before any of it is applied.  Sections:

========  =============================================================
id        payload
========  =============================================================
1 META    graph name, generation, next_vid / next_eid, counts
2 STRING  interned label / property-name table (uvarint count + strs)
3 VERTEX  columnar: vid array (i64), label-set table + per-vertex
          label-set ids (i32), then one column per property name
          (typed: int64 / f64 / utf-8 blob / tagged mixed)
4 EDGE    columnar: eid / src / dst arrays (i64) + label-id array
          (i32), then a sparse list of edges with properties
5 INDEX   (label id, property id) pairs of existing property indexes
6 STATS   planner statistics (optional): epoch, label / edge-type /
          degree-pair / label-pair counters, and per-(label, property)
          histograms truncated to their most common values
========  =============================================================

The layout is deliberately *columnar*, and since the columnar-core
refactor it mirrors the in-memory representation: the encoder reads
the graph's label-set tables and typed property columns directly, and
the decoder maps each section straight back into them - splitting
every property column by owning label-set table and adopting
dense-prefix int/float columns wholesale as arrays - with no
per-vertex object or property-dict rehydration anywhere.  That bulk
``array.frombytes`` / bulk-adopt path is what makes a snapshot load
several times faster than regenerating the same graph (the point of
the dataset memoization cache).  Property columns are typed - a column
whose values are all ints/floats/strings becomes a packed vector; any
other mix falls back to the tagged value codec, the same encoding the
WAL uses.

Vertices and edges are written in iteration (= insertion) order and
ids are stored explicitly, so a reloaded graph reproduces the original
iteration order, id sequences and index bucket order exactly - deleted
ids stay holes, ``_next_vid``/``_next_eid`` keep monotonic.  (Vertex
and edge ids are never reused, so insertion order is ascending id
order; the loader relies on this when regrouping label buckets.)  The
endpoint-pair index is left unmaterialized (``_pairs = None``) - the
graph rebuilds it in one batch pass on the first endpoint probe.

Writes go to a temp file in the target directory, are fsynced, then
atomically renamed over the destination - a crash mid-write never
leaves a half-visible snapshot.
"""

from __future__ import annotations

import gc
import os
import struct
import sys
import time
import zlib
from array import array
from pathlib import Path

from repro.exceptions import StorageError
from repro.graphdb import faults, observe
from repro.graphdb.columnar import KIND_FLOAT, KIND_INT, KIND_OBJ, PropertyColumn
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.statistics import MCV_CAP, GraphStatistics, PropertyStats
from repro.graphdb.storage.codec import (
    CodecError,
    read_props,
    read_str,
    read_uvarint,
    read_value,
    write_props,
    write_str,
    write_uvarint,
    write_value,
)

MAGIC = b"RPGSNAP1"
FORMAT_VERSION = 1

SECTION_META = 1
SECTION_STRINGS = 2
SECTION_VERTICES = 3
SECTION_EDGES = 4
SECTION_INDEXES = 5
SECTION_STATS = 6

#: Property-column types (mirroring the value-codec tags).
COL_MIXED = 0
COL_INT = 3
COL_FLOAT = 4
COL_STR = 5
COL_STR_LIST = 6

_HEADER = struct.Struct("<8sHHII")  # magic, version, flags, nsect, table_crc
_TABLE_ENTRY = struct.Struct("<BQQI")  # id, offset, length, crc

#: Failpoints threaded through the snapshot write/read paths.
FP_WRITE_OPEN = faults.REGISTRY.register("snapshot.write.open")
FP_WRITE_TABLE = faults.REGISTRY.register("snapshot.write.table")
FP_WRITE_SECTION = faults.REGISTRY.register("snapshot.write.section")
FP_WRITE_FSYNC = faults.REGISTRY.register("snapshot.write.fsync")
FP_RENAME = faults.REGISTRY.register("snapshot.rename")
FP_DIR_FSYNC = faults.REGISTRY.register("snapshot.dir_fsync")
FP_READ = faults.REGISTRY.register("snapshot.read")

_SNAP_WRITES = observe.REGISTRY.counter(
    "repro_snapshot_writes_total", "Snapshots written (tmp+rename)."
)
_SNAP_WRITTEN_BYTES = observe.REGISTRY.counter(
    "repro_snapshot_written_bytes_total", "Bytes written into snapshots."
)
_SNAP_WRITE_SECONDS = observe.REGISTRY.histogram(
    "repro_snapshot_write_seconds",
    help="Snapshot serialize+fsync+rename wall time.",
)

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class SnapshotError(StorageError):
    """Raised when a snapshot file is missing, torn, or corrupt."""


class SnapshotIOError(SnapshotError):
    """The snapshot could not be *read* (transient I/O, permissions).

    Distinct from content corruption: recovery falls back to an older
    generation on corruption, but must abort on I/O failures - falling
    back there would silently fork history and later destroy the
    newest generation's data.
    """


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_snapshot(
    graph: PropertyGraph,
    path: str | Path,
    generation: int = 0,
) -> int:
    """Serialize ``graph`` to ``path`` atomically; returns bytes written."""
    path = Path(path)
    started = time.perf_counter()
    sections = _encode_sections(graph, generation)
    table = bytearray()
    payload = bytearray()
    offset = _HEADER.size + _TABLE_ENTRY.size * len(sections)
    for section_id, body in sections:
        table += _TABLE_ENTRY.pack(
            section_id, offset, len(body), zlib.crc32(body)
        )
        payload += body
        offset += len(body)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, len(sections), zlib.crc32(bytes(table))
    )

    tmp = path.with_name(path.name + ".tmp")
    written = len(header) + len(table)
    try:
        faults.fire(FP_WRITE_OPEN)
        with open(tmp, "wb") as fh:
            faults.write(FP_WRITE_TABLE, fh, header + bytes(table))
            for _section_id, body in sections:
                faults.write(FP_WRITE_SECTION, fh, body)
                written += len(body)
            fh.flush()
            faults.retrying(
                lambda: (
                    faults.fire(FP_WRITE_FSYNC),
                    os.fsync(fh.fileno()),
                ),
                "fsync snapshot",
            )
        faults.fire(FP_RENAME)
        os.replace(tmp, path)
    except Exception:
        # Clean the partial tmp file on an *error* return - but not on
        # SimulatedCrash (a BaseException): a killed process leaves its
        # debris behind, and the store sweeps orphans on the next open.
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - nothing more to do
            pass
        raise
    _fsync_dir(path.parent)
    _SNAP_WRITES.inc()
    _SNAP_WRITTEN_BYTES.inc(written)
    _SNAP_WRITE_SECONDS.observe(time.perf_counter() - started)
    return written


def _fsync_dir(directory: Path) -> None:
    """Make a rename durable by fsyncing the containing directory."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        faults.retrying(
            lambda: (faults.fire(FP_DIR_FSYNC), os.fsync(fd)),
            "fsync snapshot directory",
        )
    finally:
        os.close(fd)


def _to_le_bytes(arr: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - x86/arm are little
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _encode_sections(
    graph: PropertyGraph, generation: int
) -> list[tuple[int, bytes]]:
    strings: dict[str, int] = {}

    def intern(value: str) -> int:
        sid = strings.get(value)
        if sid is None:
            sid = strings[value] = len(strings)
        return sid

    # VERTEX -----------------------------------------------------------
    # The graph already holds vertices grouped by label set, so the
    # section is assembled straight from the columnar core: the vid /
    # label-set-id arrays from the vid->table map, the property
    # columns by concatenating each table's (vid, value) pairs per
    # property name.  Snapshot label-set ids are assigned in
    # first-vertex order (as the object-walking encoder did).
    sym_name = graph._symbols.name
    vids = array("q")
    lsids = array("i")
    ls_of_tid: dict[int, int] = {}
    ls_order: list[int] = []
    for vid, tid in enumerate(graph._v_tid):
        if tid < 0:
            continue
        vids.append(vid)
        lsid = ls_of_tid.get(tid)
        if lsid is None:
            lsid = ls_of_tid[tid] = len(ls_order)
            ls_order.append(tid)
        lsids.append(lsid)

    columns: dict[str, tuple[list[int], list[object]]] = {}
    for table in graph.iter_tables():
        if table.live == 0:
            continue
        table_vids = table.vids
        for key_sid, col in table.columns.items():
            if col.count == 0:
                continue
            name = sym_name(key_sid)
            entry = columns.get(name)
            if entry is None:
                entry = columns[name] = ([], [])
            col_vids, values = entry
            for vid, present, value in zip(table_vids, col.mask, col.data):
                if present and vid >= 0:
                    col_vids.append(vid)
                    values.append(value)

    vbuf = bytearray()
    write_uvarint(vbuf, len(vids))
    vbuf += _to_le_bytes(vids)
    write_uvarint(vbuf, len(ls_order))
    for tid in ls_order:
        ordered = sorted(graph._labelset_strs[tid])
        write_uvarint(vbuf, len(ordered))
        for label in ordered:
            write_uvarint(vbuf, intern(label))
    vbuf += _to_le_bytes(lsids)
    write_uvarint(vbuf, len(columns))
    for name, (col_vids, values) in columns.items():
        write_uvarint(vbuf, intern(name))
        write_uvarint(vbuf, len(col_vids))
        ctype = _column_type(values)
        vbuf.append(ctype)
        vbuf += _to_le_bytes(array("q", col_vids))
        _encode_column(vbuf, ctype, values)

    # EDGE (columnar) --------------------------------------------------
    eids = array("q")
    srcs = array("q")
    dsts = array("q")
    label_ids = array("i")
    for eid, (sid, src, dst) in enumerate(
        zip(graph._e_label, graph._e_src, graph._e_dst)
    ):
        if sid < 0:
            continue
        eids.append(eid)
        srcs.append(src)
        dsts.append(dst)
        label_ids.append(intern(sym_name(sid)))
    with_props = sorted(
        eid for eid, props in graph._e_props.items()
        if props and graph._e_label[eid] >= 0
    )
    ebuf = bytearray()
    write_uvarint(ebuf, len(eids))
    ebuf += _to_le_bytes(eids)
    ebuf += _to_le_bytes(srcs)
    ebuf += _to_le_bytes(dsts)
    ebuf += _to_le_bytes(label_ids)
    write_uvarint(ebuf, len(with_props))
    for eid in with_props:
        write_uvarint(ebuf, eid)
        write_props(ebuf, graph._e_props[eid])

    # INDEX ------------------------------------------------------------
    index_keys = sorted(graph._property_indexes)
    xbuf = bytearray()
    write_uvarint(xbuf, len(index_keys))
    for label, prop in index_keys:
        write_uvarint(xbuf, intern(label))
        write_uvarint(xbuf, intern(prop))

    # STATS (optional: only when statistics are materialized) ----------
    tbuf = None
    if graph._stats is not None:
        tbuf = _encode_stats(graph._stats, intern)

    # STRING -----------------------------------------------------------
    sbuf = bytearray()
    write_uvarint(sbuf, len(strings))
    for value in strings:  # insertion order == id order
        write_str(sbuf, value)

    # META -------------------------------------------------------------
    mbuf = bytearray()
    write_str(mbuf, graph.name)
    write_uvarint(mbuf, generation)
    write_uvarint(mbuf, graph._next_vid)
    write_uvarint(mbuf, graph._next_eid)
    write_uvarint(mbuf, len(vids))
    write_uvarint(mbuf, len(eids))

    sections = [
        (SECTION_META, bytes(mbuf)),
        (SECTION_STRINGS, bytes(sbuf)),
        (SECTION_VERTICES, bytes(vbuf)),
        (SECTION_EDGES, bytes(ebuf)),
        (SECTION_INDEXES, bytes(xbuf)),
    ]
    if tbuf is not None:
        sections.append((SECTION_STATS, bytes(tbuf)))
    return sections


def _encode_stats(stats: GraphStatistics, intern) -> bytearray:
    """Serialize planner statistics; histograms keep top-MCV_CAP values.

    Only scalar values the tagged codec round-trips *hashably*
    (bool/int/float/str) are persisted as most-common values; anything
    else is folded into the summarized tail.
    """
    buf = bytearray()
    write_uvarint(buf, stats.epoch)
    write_uvarint(buf, stats.num_vertices)
    write_uvarint(buf, stats.num_edges)

    def write_counts(counter: dict, keys: int) -> None:
        write_uvarint(buf, len(counter))
        for key, count in counter.items():
            if keys == 1:
                write_uvarint(buf, intern(key))
            else:
                for part in key:
                    write_uvarint(buf, intern(part))
            write_uvarint(buf, count)

    write_counts(stats.label_counts, 1)
    write_counts(stats.edge_label_counts, 1)
    write_counts(stats._src, 2)
    write_counts(stats._dst, 2)
    write_counts(stats._src_total, 1)
    write_counts(stats._dst_total, 1)
    write_counts(stats._label_pairs, 2)
    write_counts(stats._triples, 3)

    write_uvarint(buf, len(stats.props))
    for (label, prop), stat in stats.props.items():
        write_uvarint(buf, intern(label))
        write_uvarint(buf, intern(prop))
        write_uvarint(buf, stat.count)
        write_uvarint(buf, stat.unhashable)
        write_uvarint(buf, stat.ndv)
        persistable = [
            (value, count) for value, count in stat.hist.items()
            if isinstance(value, (bool, int, float, str))
        ]
        persistable.sort(key=lambda item: -item[1])
        mcvs = persistable[:MCV_CAP]
        write_uvarint(buf, len(mcvs))
        for value, count in mcvs:
            write_value(buf, value)
            write_uvarint(buf, count)
    return buf


def _column_type(values: list[object]) -> int:
    """The tightest packed representation for a property column."""
    kinds = {type(v) for v in values}
    if kinds == {int} and all(_I64_MIN <= v <= _I64_MAX for v in values):
        return COL_INT
    if kinds == {float}:
        return COL_FLOAT
    if kinds == {str}:
        return COL_STR
    if kinds == {list} and all(
        type(item) is str for v in values for item in v
    ):
        # Replicated list properties (COLLECT semantics) are almost
        # always lists of strings; pack them flat instead of paying
        # the tagged codec per element.
        return COL_STR_LIST
    return COL_MIXED


def _encode_column(
    buf: bytearray, ctype: int, values: list[object]
) -> None:
    if ctype == COL_INT:
        buf += _to_le_bytes(array("q", values))
    elif ctype == COL_FLOAT:
        buf += _to_le_bytes(array("d", values))
    elif ctype == COL_STR:
        encoded = [v.encode("utf-8") for v in values]
        buf += _to_le_bytes(array("i", [len(e) for e in encoded]))
        blob = b"".join(encoded)
        write_uvarint(buf, len(blob))
        buf += blob
    elif ctype == COL_STR_LIST:
        buf += _to_le_bytes(array("i", [len(v) for v in values]))
        encoded = [
            item.encode("utf-8") for v in values for item in v
        ]
        write_uvarint(buf, len(encoded))
        buf += _to_le_bytes(array("i", [len(e) for e in encoded]))
        blob = b"".join(encoded)
        write_uvarint(buf, len(blob))
        buf += blob
    else:
        for value in values:
            write_value(buf, value)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_snapshot(path: str | Path) -> PropertyGraph:
    graph, _generation = read_snapshot_with_generation(path)
    return graph


def read_snapshot_with_generation(
    path: str | Path,
) -> tuple[PropertyGraph, int]:
    path = Path(path)
    try:
        faults.fire(FP_READ)
        data = path.read_bytes()
    except FileNotFoundError as exc:
        raise SnapshotError(f"no snapshot at {path}: {exc}") from exc
    except OSError as exc:
        raise SnapshotIOError(
            f"cannot read snapshot {path}: {exc}"
        ) from exc
    sections = _validate_layout(data, path)
    # Bulk decode allocates tens of thousands of long-lived containers;
    # pausing the cyclic collector avoids pointless mid-load GC passes
    # (none of what we build is garbage).
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return _decode_graph(data, sections)
    except CodecError as exc:
        raise SnapshotError(f"corrupt snapshot {path}: {exc}") from exc
    finally:
        if was_enabled:
            gc.enable()


def _validate_layout(
    data: bytes, path: Path
) -> dict[int, tuple[int, int]]:
    """Checksum-validate the file; return id -> (offset, length)."""
    if len(data) < _HEADER.size:
        raise SnapshotError(f"snapshot {path} too short for header")
    magic, version, _flags, nsect, table_crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SnapshotError(f"{path} is not a snapshot (bad magic)")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has unsupported format version {version}"
        )
    table_end = _HEADER.size + nsect * _TABLE_ENTRY.size
    if len(data) < table_end:
        raise SnapshotError(f"snapshot {path} too short for section table")
    table = data[_HEADER.size:table_end]
    if zlib.crc32(table) != table_crc:
        raise SnapshotError(f"snapshot {path}: section table checksum")
    sections: dict[int, tuple[int, int]] = {}
    for i in range(nsect):
        section_id, offset, length, crc = _TABLE_ENTRY.unpack_from(
            table, i * _TABLE_ENTRY.size
        )
        if offset + length > len(data):
            raise SnapshotError(
                f"snapshot {path}: section {section_id} out of bounds"
            )
        if zlib.crc32(data[offset:offset + length]) != crc:
            raise SnapshotError(
                f"snapshot {path}: section {section_id} checksum"
            )
        sections[section_id] = (offset, length)
    for required in (
        SECTION_META, SECTION_STRINGS, SECTION_VERTICES, SECTION_EDGES,
    ):
        if required not in sections:
            raise SnapshotError(
                f"snapshot {path}: missing section {required}"
            )
    return sections


def _read_array(
    data: bytes, pos: int, typecode: str, count: int
) -> tuple[list, int]:
    arr = array(typecode)
    nbytes = count * arr.itemsize
    end = pos + nbytes
    if end > len(data):
        raise CodecError("truncated array")
    arr.frombytes(data[pos:end])
    if sys.byteorder == "big":  # pragma: no cover
        arr.byteswap()
    return arr.tolist(), end


def _read_str_blob(
    data: bytes, pos: int, lengths: list[int]
) -> tuple[list[str], int]:
    """Decode one utf-8 blob into ``len(lengths)`` strings."""
    blob_len, pos = read_uvarint(data, pos)
    end = pos + blob_len
    if end > len(data):
        raise CodecError("truncated string column")
    if sum(lengths) != blob_len:
        raise CodecError("string column length mismatch")
    raw = data[pos:end]
    decoded = raw.decode("utf-8")
    values = []
    offset = 0
    if len(decoded) == blob_len:
        # Pure ASCII: byte offsets == character offsets, so slice the
        # single decoded string (fast path).
        for length in lengths:
            cut = offset + length
            values.append(decoded[offset:cut])
            offset = cut
    else:
        for length in lengths:
            cut = offset + length
            values.append(raw[offset:cut].decode("utf-8"))
            offset = cut
    return values, end


def _decode_graph(
    data: bytes, sections: dict[int, tuple[int, int]]
) -> tuple[PropertyGraph, int]:
    # META
    pos = sections[SECTION_META][0]
    name, pos = read_str(data, pos)
    generation, pos = read_uvarint(data, pos)
    next_vid, pos = read_uvarint(data, pos)
    next_eid, pos = read_uvarint(data, pos)
    num_vertices, pos = read_uvarint(data, pos)
    num_edges, pos = read_uvarint(data, pos)

    # STRING
    pos = sections[SECTION_STRINGS][0]
    count, pos = read_uvarint(data, pos)
    strings: list[str] = []
    for _ in range(count):
        value, pos = read_str(data, pos)
        strings.append(value)

    graph = PropertyGraph(name)
    symbols = graph._symbols
    label_index = graph._label_index
    out_adj = graph._out
    in_adj = graph._in
    # snapshot string id -> graph symbol id, interned once up front.
    sym_ids = [symbols.intern(s) for s in strings]

    # VERTEX (columnar): the section's vid / label-set-id / property
    # columns land directly in the graph's label-set tables - no
    # per-vertex object or dict is ever rehydrated.
    pos = sections[SECTION_VERTICES][0]
    count, pos = read_uvarint(data, pos)
    if count != num_vertices:
        raise CodecError("vertex count mismatch with META")
    vid_list, pos = _read_array(data, pos, "q", count)
    n_labelsets, pos = read_uvarint(data, pos)
    tables = []
    labelset_names: list[tuple[str, ...]] = []
    try:
        for _ in range(n_labelsets):
            nlabels, pos = read_uvarint(data, pos)
            names = []
            label_sids = []
            for _ in range(nlabels):
                sid, pos = read_uvarint(data, pos)
                names.append(strings[sid])
                label_sids.append(sym_ids[sid])
            tables.append(graph._table_for(frozenset(label_sids)))
            labelset_names.append(tuple(names))
        lsid_list, pos = _read_array(data, pos, "i", count)
        # Size the id-space to next_vid, not max live id + 1: removed
        # tail ids must stay tombstoned holes so add_vertex's
        # "vid == len(_v_tid)" append invariant survives the reload.
        num_vid_slots = max(next_vid, max(vid_list, default=-1) + 1)
        v_tid = graph._v_tid
        v_row = graph._v_row
        v_tid.extend([-1] * num_vid_slots)
        v_row.extend([0] * num_vid_slots)
        for vid, lsid in zip(vid_list, lsid_list):
            table = tables[lsid]
            v_tid[vid] = table.labelset_id
            v_row[vid] = len(table.vids)
            table.vids.append(vid)
            table.live += 1
        out_adj.update(zip(vid_list, [{} for _ in range(count)]))
        in_adj.update(zip(vid_list, [{} for _ in range(count)]))
    except IndexError:
        raise CodecError("vertex references unknown label set") from None

    # Label buckets: vertices were decoded in ascending-vid order, so
    # each table's vid list is ascending and merging the per-table
    # member lists by sorting restores the original per-label
    # insertion order.
    by_label: dict[int, list[list[int]]] = {}
    for table in tables:
        if not table.vids:
            continue
        for label_sid in table.label_sids:
            by_label.setdefault(label_sid, []).append(table.vids)
    for label_sid, groups in by_label.items():
        if len(groups) == 1:
            label_index[label_sid] = dict.fromkeys(groups[0])
        else:
            merged = sorted(vid for group in groups for vid in group)
            label_index[label_sid] = dict.fromkeys(merged)

    # Property columns: split each section column by owning table,
    # then bulk-adopt (dense prefix) or scatter into typed columns.
    ncols, pos = read_uvarint(data, pos)
    try:
        for _ in range(ncols):
            name_sid, pos = read_uvarint(data, pos)
            key_sid = sym_ids[name_sid]
            nentries, pos = read_uvarint(data, pos)
            if pos >= len(data):
                raise CodecError("truncated column header")
            ctype = data[pos]
            pos += 1
            col_vids, pos = _read_array(data, pos, "q", nentries)
            if ctype == COL_INT:
                values, pos = _read_array(data, pos, "q", nentries)
                kind = KIND_INT
            elif ctype == COL_FLOAT:
                values, pos = _read_array(data, pos, "d", nentries)
                kind = KIND_FLOAT
            elif ctype == COL_STR:
                lengths, pos = _read_array(data, pos, "i", nentries)
                values, pos = _read_str_blob(data, pos, lengths)
                kind = KIND_OBJ
            elif ctype == COL_STR_LIST:
                counts, pos = _read_array(data, pos, "i", nentries)
                nitems, pos = read_uvarint(data, pos)
                if sum(counts) != nitems:
                    raise CodecError("string-list column count mismatch")
                lengths, pos = _read_array(data, pos, "i", nitems)
                flat, pos = _read_str_blob(data, pos, lengths)
                values = []
                offset = 0
                for count_items in counts:
                    cut = offset + count_items
                    values.append(flat[offset:cut])
                    offset = cut
                kind = KIND_OBJ
            elif ctype == COL_MIXED:
                values = []
                for _ in range(nentries):
                    value, pos = read_value(data, pos)
                    values.append(value)
                kind = KIND_OBJ
            else:
                raise CodecError(f"unknown column type {ctype}")
            per_table: dict[int, tuple[list, list]] = {}
            for vid, value in zip(col_vids, values):
                tid = v_tid[vid]
                if tid < 0:
                    raise CodecError(
                        "property column references unknown id"
                    )
                entry = per_table.get(tid)
                if entry is None:
                    entry = per_table[tid] = ([], [])
                entry[0].append(v_row[vid])
                entry[1].append(value)
            for tid, (rows, row_values) in per_table.items():
                graph._tables[tid].columns[key_sid] = (
                    PropertyColumn.from_rows(rows, row_values, kind)
                )
    except (KeyError, IndexError):
        raise CodecError("property column references unknown id") from None

    # EDGE (columnar, fused rebuild of edge columns + adjacency)
    pos = sections[SECTION_EDGES][0]
    count, pos = read_uvarint(data, pos)
    if count != num_edges:
        raise CodecError("edge count mismatch with META")
    eid_list, pos = _read_array(data, pos, "q", count)
    src_list, pos = _read_array(data, pos, "q", count)
    dst_list, pos = _read_array(data, pos, "q", count)
    lid_list, pos = _read_array(data, pos, "i", count)
    try:
        label_list = list(map(strings.__getitem__, lid_list))
        # Same id-space rule as vertices: removed tail eids stay holes.
        num_eid_slots = max(next_eid, max(eid_list, default=-1) + 1)
        e_src = graph._e_src
        e_dst = graph._e_dst
        e_label = graph._e_label
        e_src.extend([0] * num_eid_slots)
        e_dst.extend([0] * num_eid_slots)
        e_label.extend([-1] * num_eid_slots)
        for eid, src, dst, lid, label in zip(
            eid_list, src_list, dst_list, lid_list, label_list
        ):
            e_src[eid] = src
            e_dst[eid] = dst
            e_label[eid] = sym_ids[lid]
            adjacency = out_adj[src]
            bucket = adjacency.get(label)
            if bucket is None:
                bucket = adjacency[label] = {}
            bucket[eid] = dst
            adjacency = in_adj[dst]
            bucket = adjacency.get(label)
            if bucket is None:
                bucket = adjacency[label] = {}
            bucket[eid] = src
        graph._num_edges = count
    except (KeyError, IndexError) as exc:
        raise CodecError(f"edge references unknown id: {exc}") from None
    # Defer the endpoint-pair index; the graph batch-builds it on the
    # first probe (see PropertyGraph._build_pairs).
    graph._pairs = None
    nprops_edges, pos = read_uvarint(data, pos)
    for _ in range(nprops_edges):
        eid, pos = read_uvarint(data, pos)
        props, pos = read_props(data, pos)
        if not (0 <= eid < len(e_label)) or e_label[eid] < 0:
            raise CodecError(f"properties for unknown edge {eid}")
        graph._e_props[eid] = props

    # INDEX (optional section; rebuilt from the live stores)
    if SECTION_INDEXES in sections:
        pos = sections[SECTION_INDEXES][0]
        count, pos = read_uvarint(data, pos)
        for _ in range(count):
            label_sid, pos = read_uvarint(data, pos)
            prop_sid, pos = read_uvarint(data, pos)
            try:
                graph.create_property_index(
                    strings[label_sid], strings[prop_sid]
                )
            except IndexError:
                raise CodecError("index references unknown string") from None

    # STATS (optional section; attached so planning starts warm)
    if SECTION_STATS in sections:
        pos = sections[SECTION_STATS][0]
        graph._stats = _decode_stats(data, pos, strings)

    graph._next_vid = num_vid_slots
    graph._next_eid = num_eid_slots
    return graph, generation


def _decode_stats(
    data: bytes, pos: int, strings: list[str]
) -> GraphStatistics:
    stats = GraphStatistics()
    try:
        stats.epoch, pos = read_uvarint(data, pos)
        stats.num_vertices, pos = read_uvarint(data, pos)
        stats.num_edges, pos = read_uvarint(data, pos)

        def read_counts(keys: int) -> tuple[dict, int]:
            nonlocal pos
            counter: dict = {}
            count, pos = read_uvarint(data, pos)
            for _ in range(count):
                if keys == 1:
                    sid, pos = read_uvarint(data, pos)
                    key: object = strings[sid]
                else:
                    parts = []
                    for _ in range(keys):
                        sid, pos = read_uvarint(data, pos)
                        parts.append(strings[sid])
                    key = tuple(parts)
                value, pos = read_uvarint(data, pos)
                counter[key] = value
            return counter, pos

        stats.label_counts, pos = read_counts(1)
        stats.edge_label_counts, pos = read_counts(1)
        stats._src, pos = read_counts(2)
        stats._dst, pos = read_counts(2)
        stats._src_total, pos = read_counts(1)
        stats._dst_total, pos = read_counts(1)
        stats._label_pairs, pos = read_counts(2)
        stats._triples, pos = read_counts(3)

        nprops, pos = read_uvarint(data, pos)
        for _ in range(nprops):
            label_sid, pos = read_uvarint(data, pos)
            prop_sid, pos = read_uvarint(data, pos)
            stat = PropertyStats()
            stat.count, pos = read_uvarint(data, pos)
            stat.unhashable, pos = read_uvarint(data, pos)
            ndv, pos = read_uvarint(data, pos)
            n_mcv, pos = read_uvarint(data, pos)
            mcv_total = 0
            for _ in range(n_mcv):
                value, pos = read_value(data, pos)
                occurrences, pos = read_uvarint(data, pos)
                stat.hist[value] = occurrences
                mcv_total += occurrences
            stat.extra_ndv = max(0, ndv - len(stat.hist))
            stat.extra_count = max(
                0, stat.count - stat.unhashable - mcv_total
            )
            stats.props[(strings[label_sid], strings[prop_sid])] = stat
    except IndexError:
        raise CodecError("stats section references unknown string") from None
    stats._reset_epoch_trigger()
    return stats


# ----------------------------------------------------------------------
# Canonical state (testing / verification aid)
# ----------------------------------------------------------------------
def graph_state(graph: PropertyGraph) -> dict:
    """A canonical, comparable description of a graph's full state.

    Used by the recovery tests to assert that a recovered graph is
    *exactly* the graph that was persisted - ids, labels, properties,
    index keys and id counters included.  The endpoint-pair index is
    intentionally absent: it is derived state that may or may not be
    materialized.
    """
    return {
        "name": graph.name,
        "next_vid": graph._next_vid,
        "next_eid": graph._next_eid,
        "vertices": {
            v.vid: (
                tuple(sorted(v.labels)),
                repr(sorted(v.properties.items(), key=repr)),
            )
            for v in graph.iter_vertices()
        },
        "edges": {
            e.eid: (e.src, e.dst, e.label,
                    repr(sorted(e.properties.items(), key=repr)))
            for e in graph.iter_edges()
        },
        "indexes": sorted(graph._property_indexes),
    }
