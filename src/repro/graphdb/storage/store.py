"""The durable store: one data directory, one live graph, one WAL.

:class:`GraphStore` glues the layers together:

* :meth:`GraphStore.open` recovers the directory's latest consistent
  state (snapshot + WAL tail, see :mod:`.recovery`), attaches a
  mutation listener to the recovered :class:`PropertyGraph`, and keeps
  an appender on the current generation's WAL - from then on every
  ``add_vertex`` / ``add_edge`` / ``set_property`` / ``remove_*`` /
  ``create_property_index`` on the graph is logged before the call
  returns (durability is governed by the WAL's sync mode);
* :meth:`GraphStore.create` initializes a directory from an existing
  in-memory graph (the dataset memoization and ``repro save`` path);
* :meth:`GraphStore.checkpoint` compacts: it folds the current WAL
  into a fresh snapshot of generation ``g+1`` (written atomically),
  starts an empty ``wal-<g+1>``, and prunes the old generation's
  files.  A crash anywhere in that sequence recovers to either the old
  or the new generation, never a mixture, because recovery pairs each
  snapshot strictly with its own generation's log.

The store only ever *appends* to the log of the graph it owns; readers
that want a point-in-time view without write access should use
:func:`repro.graphdb.storage.recovery.recover_graph`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.exceptions import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.recovery import (
    RecoveryManager,
    RecoveryReport,
    snapshot_name,
    wal_name,
)
from repro.graphdb.storage.snapshot import write_snapshot
from repro.graphdb.storage.wal import WriteAheadLog


class GraphStore:
    """A property graph bound to a durable data directory."""

    def __init__(
        self,
        data_dir: Path,
        graph: PropertyGraph,
        generation: int,
        wal: WriteAheadLog,
        recovery: RecoveryReport | None = None,
    ):
        self.data_dir = data_dir
        self.graph = graph
        self.generation = generation
        self.recovery = recovery
        self._wal = wal
        self._closed = False
        graph.add_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        data_dir: str | Path,
        create: bool = True,
        sync: str = "batch",
        graph_name: str | None = None,
    ) -> GraphStore:
        """Recover ``data_dir`` and return a live, logging store."""
        data_dir = Path(data_dir)
        if not data_dir.is_dir():
            if not create:
                raise StorageError(f"no data directory at {data_dir}")
            data_dir.mkdir(parents=True, exist_ok=True)
        graph, report = RecoveryManager(
            data_dir, graph_name=graph_name
        ).recover(truncate=True)
        wal = WriteAheadLog(
            data_dir / wal_name(report.generation),
            generation=report.generation,
            sync=sync,
        )
        store = cls(
            data_dir, graph, report.generation, wal, recovery=report
        )
        store._prune(keep=report.generation)
        return store

    @classmethod
    def create(
        cls,
        data_dir: str | Path,
        graph: PropertyGraph,
        overwrite: bool = False,
        sync: str = "batch",
    ) -> GraphStore:
        """Initialize a directory from an in-memory graph (generation 1)."""
        data_dir = Path(data_dir)
        if data_dir.is_dir() and any(data_dir.iterdir()):
            if not overwrite:
                raise StorageError(
                    f"data directory {data_dir} is not empty "
                    "(pass overwrite=True to replace it)"
                )
            # Overwrite replaces *store artifacts* only; anything else
            # in the directory is not ours to delete.
            from repro.graphdb.storage.recovery import (
                SNAPSHOT_PATTERN,
                WAL_PATTERN,
            )

            foreign = [
                p.name for p in data_dir.iterdir()
                if not (
                    SNAPSHOT_PATTERN.match(p.name)
                    or WAL_PATTERN.match(p.name)
                )
            ]
            if foreign:
                raise StorageError(
                    f"refusing to overwrite {data_dir}: it contains "
                    f"non-store entries {sorted(foreign)[:5]}"
                )
            for path in data_dir.iterdir():
                path.unlink()
        data_dir.mkdir(parents=True, exist_ok=True)
        generation = 1
        write_snapshot(
            graph, data_dir / snapshot_name(generation), generation
        )
        wal = WriteAheadLog(
            data_dir / wal_name(generation),
            generation=generation,
            sync=sync,
        )
        return cls(data_dir, graph, generation, wal)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _on_mutation(self, op: str, args: tuple) -> None:
        self._wal.append(op, args)

    def sync(self) -> None:
        """Force buffered WAL records to disk (fsync included)."""
        self._wal.flush(fsync=True)

    def wal_size_bytes(self) -> int:
        return self._wal.size_bytes()

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Fold the WAL into a fresh snapshot; returns its path.

        Ordering is crash-safe: the new snapshot is fully durable
        before the new (empty) WAL exists, and old-generation files are
        only removed after both.  Recovery at any intermediate point
        finds either generation ``g`` complete or generation ``g+1``
        complete.
        """
        self._require_open()
        if getattr(self.graph, "in_transaction", False):
            # A snapshot taken mid-transaction would make uncommitted
            # state durable with no frame to discard it.
            raise StorageError(
                "cannot checkpoint while a transaction is open"
            )
        self._wal.flush(fsync=True)
        new_generation = self.generation + 1
        snapshot_path = self.data_dir / snapshot_name(new_generation)
        write_snapshot(self.graph, snapshot_path, new_generation)
        # A stale log of the target generation (left behind when a
        # past recovery fell back over a torn checkpoint) must not be
        # appended to: its snapshot was just atomically replaced, so
        # its records belong to an abandoned history.
        self._unlink(self.data_dir / wal_name(new_generation))
        old_wal = self._wal
        self._wal = WriteAheadLog(
            self.data_dir / wal_name(new_generation),
            generation=new_generation,
            sync=old_wal.sync,
            batch_ops=old_wal.batch_ops,
            batch_bytes=old_wal.batch_bytes,
        )
        old_wal.close()
        self.generation = new_generation
        self._prune(keep=new_generation)
        return snapshot_path

    def _prune(self, keep: int) -> None:
        """Best-effort removal of *older* generations' files.

        Newer-generation files are never touched here: they can only
        exist when recovery fell back past a snapshot it could not
        validate, and deleting them on open would destroy the newest
        data after a transient fault.  A later :meth:`checkpoint`
        reaching that generation overwrites them legitimately.
        """
        manager = RecoveryManager(self.data_dir)
        for generation in manager.snapshot_generations():
            if generation < keep:
                self._unlink(self.data_dir / snapshot_name(generation))
        for generation in manager.wal_generations():
            if generation < keep:
                self._unlink(self.data_dir / wal_name(generation))

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - prune is best-effort
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the WAL and stop logging; the graph stays usable."""
        if self._closed:
            return
        self._closed = True
        self.graph.remove_listener(self._on_mutation)
        self._wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def __enter__(self) -> GraphStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphStore {str(self.data_dir)!r} gen={self.generation} "
            f"{self.graph.summary()}>"
        )
