"""The durable store: one data directory, one live graph, one WAL.

:class:`GraphStore` glues the layers together:

* :meth:`GraphStore.open` recovers the directory's latest consistent
  state (snapshot + WAL tail, see :mod:`.recovery`), attaches a
  mutation listener to the recovered :class:`PropertyGraph`, and keeps
  an appender on the current generation's WAL - from then on every
  ``add_vertex`` / ``add_edge`` / ``set_property`` / ``remove_*`` /
  ``create_property_index`` on the graph is logged before the call
  returns (durability is governed by the WAL's sync mode);
* :meth:`GraphStore.create` initializes a directory from an existing
  in-memory graph (the dataset memoization and ``repro save`` path);
* :meth:`GraphStore.checkpoint` compacts: it folds the current WAL
  into a fresh snapshot of generation ``g+1`` (written atomically),
  starts an empty ``wal-<g+1>``, and prunes the old generation's
  files.  A crash anywhere in that sequence recovers to either the old
  or the new generation, never a mixture, because recovery pairs each
  snapshot strictly with its own generation's log.

The store only ever *appends* to the log of the graph it owns; readers
that want a point-in-time view without write access should use
:func:`repro.graphdb.storage.recovery.recover_graph`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.exceptions import StorageError
from repro.graphdb import faults, observe
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.recovery import (
    RecoveryManager,
    RecoveryReport,
    is_store_artifact,
    snapshot_name,
    wal_name,
)
from repro.graphdb.storage.snapshot import write_snapshot
from repro.graphdb.storage.wal import WriteAheadLog

FP_CKPT_PRE = faults.REGISTRY.register("store.checkpoint.pre_snapshot")
FP_CKPT_STALE = faults.REGISTRY.register("store.checkpoint.stale_wal")
FP_CKPT_NEW = faults.REGISTRY.register("store.checkpoint.new_wal")

_CHECKPOINTS = observe.REGISTRY.counter(
    "repro_checkpoints_total", "Completed checkpoints (WAL compactions)."
)
_CHECKPOINT_ROLLBACKS = observe.REGISTRY.counter(
    "repro_checkpoint_rollbacks_total",
    "Half-finished checkpoints rolled back after a failure.",
)
_CHECKPOINT_SECONDS = observe.REGISTRY.histogram(
    "repro_checkpoint_seconds", help="Checkpoint wall time."
)
_STORE_GENERATION = observe.REGISTRY.gauge(
    "repro_store_generation",
    "Generation of the most recently opened/checkpointed store.",
)


class GraphStore:
    """A property graph bound to a durable data directory."""

    def __init__(
        self,
        data_dir: Path,
        graph: PropertyGraph,
        generation: int,
        wal: WriteAheadLog,
        recovery: RecoveryReport | None = None,
    ):
        self.data_dir = data_dir
        self.graph = graph
        self.generation = generation
        self.recovery = recovery
        self._wal = wal
        self._closed = False
        self._poisoned = False
        graph.add_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        data_dir: str | Path,
        create: bool = True,
        sync: str = "batch",
        graph_name: str | None = None,
    ) -> GraphStore:
        """Recover ``data_dir`` and return a live, logging store."""
        data_dir = Path(data_dir)
        if not data_dir.is_dir():
            if not create:
                raise StorageError(f"no data directory at {data_dir}")
            data_dir.mkdir(parents=True, exist_ok=True)
        graph, report = RecoveryManager(
            data_dir, graph_name=graph_name
        ).recover(truncate=True)
        wal = WriteAheadLog(
            data_dir / wal_name(report.generation),
            generation=report.generation,
            sync=sync,
        )
        store = cls(
            data_dir, graph, report.generation, wal, recovery=report
        )
        store._prune(keep=report.generation)
        _STORE_GENERATION.set(report.generation)
        return store

    @classmethod
    def create(
        cls,
        data_dir: str | Path,
        graph: PropertyGraph,
        overwrite: bool = False,
        sync: str = "batch",
    ) -> GraphStore:
        """Initialize a directory from an in-memory graph (generation 1)."""
        data_dir = Path(data_dir)
        if data_dir.is_dir() and any(data_dir.iterdir()):
            if not overwrite:
                raise StorageError(
                    f"data directory {data_dir} is not empty "
                    "(pass overwrite=True to replace it)"
                )
            # Overwrite replaces *store artifacts* only (snapshots,
            # WALs, tmp debris, quarantined files); anything else in
            # the directory is not ours to delete.
            foreign = [
                p.name for p in data_dir.iterdir()
                if not is_store_artifact(p.name)
            ]
            if foreign:
                raise StorageError(
                    f"refusing to overwrite {data_dir}: it contains "
                    f"non-store entries {sorted(foreign)[:5]}"
                )
            for path in data_dir.iterdir():
                path.unlink()
        data_dir.mkdir(parents=True, exist_ok=True)
        generation = 1
        write_snapshot(
            graph, data_dir / snapshot_name(generation), generation
        )
        wal = WriteAheadLog(
            data_dir / wal_name(generation),
            generation=generation,
            sync=sync,
        )
        return cls(data_dir, graph, generation, wal)

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def _on_mutation(self, op: str, args: tuple) -> None:
        if self._poisoned:
            raise StorageError(
                "store is poisoned after a failed checkpoint rollback; "
                "close and reopen to recover"
            )
        self._wal.append(op, args)

    def sync(self) -> None:
        """Force buffered WAL records to disk (fsync included)."""
        self._wal.flush(fsync=True)

    def sync_group(self, commits: int) -> None:
        """Group commit: one fsync making ``commits`` commits durable.

        Identical durability to :meth:`sync`; additionally records the
        batch size in the ``repro_wal_group_commit_batch_size``
        histogram, so the fsync-per-commit amortization is observable
        (an in-process ``Transaction.commit`` reports batches of 1; the
        server's writer task batches every commit that queued while the
        previous fsync was in flight).
        """
        self._wal.group_commit(commits)

    def wal_size_bytes(self) -> int:
        return self._wal.size_bytes()

    # ------------------------------------------------------------------
    # Checkpoint / compaction
    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Fold the WAL into a fresh snapshot; returns its path.

        Ordering is crash-safe: the new snapshot is fully durable
        before the new (empty) WAL exists, and old-generation files are
        only removed after both.  Recovery at any intermediate point
        finds either generation ``g`` complete or generation ``g+1``
        complete.

        If a step fails *after* the new snapshot became visible, the
        store must not keep appending to the old generation's WAL:
        recovery would prefer snapshot ``g+1`` and those appends would
        be lost.  The failure path therefore rolls the snapshot back
        (unlinks it) - and if even that fails, poisons the store so
        further mutations raise instead of being silently droppable.
        """
        self._require_open()
        if self._poisoned:
            raise StorageError(
                "store is poisoned after a failed checkpoint rollback; "
                "close and reopen to recover"
            )
        if getattr(self.graph, "in_transaction", False):
            # A snapshot taken mid-transaction would make uncommitted
            # state durable with no frame to discard it.
            raise StorageError(
                "cannot checkpoint while a transaction is open"
            )
        started = time.perf_counter()
        self._wal.flush(fsync=True)
        new_generation = self.generation + 1
        snapshot_path = self.data_dir / snapshot_name(new_generation)
        faults.fire(FP_CKPT_PRE)
        write_snapshot(self.graph, snapshot_path, new_generation)
        try:
            # A stale log of the target generation (left behind when a
            # past recovery fell back over a torn checkpoint) must not
            # be appended to: its snapshot was just atomically
            # replaced, so its records belong to an abandoned history.
            faults.fire(FP_CKPT_STALE)
            self._unlink(self.data_dir / wal_name(new_generation))
            old_wal = self._wal
            faults.fire(FP_CKPT_NEW)
            new_wal = WriteAheadLog(
                self.data_dir / wal_name(new_generation),
                generation=new_generation,
                sync=old_wal.sync,
                batch_ops=old_wal.batch_ops,
                batch_bytes=old_wal.batch_bytes,
            )
        except Exception:
            # Not BaseException: a SimulatedCrash models kill -9, which
            # would not run this handler either - recovery must (and
            # does) cope with the raw post-rename states on its own.
            self._rollback_checkpoint(snapshot_path, new_generation)
            raise
        self._wal = new_wal
        old_wal.close()
        self.generation = new_generation
        self._prune(keep=new_generation)
        _CHECKPOINTS.inc()
        _CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
        _STORE_GENERATION.set(new_generation)
        observe.EVENTS.emit(
            "checkpoint",
            data_dir=str(self.data_dir),
            generation=new_generation,
            snapshot=snapshot_path.name,
        )
        return snapshot_path

    def _rollback_checkpoint(
        self, snapshot_path: Path, new_generation: int
    ) -> None:
        """Make a half-finished checkpoint invisible again.

        Called when a step failed after ``snapshot-<g+1>`` became
        durable.  Removing the snapshot (and any partial ``wal-<g+1>``)
        restores the pre-checkpoint directory; if the snapshot cannot
        be removed the store is poisoned, because appends to the old
        WAL would be invisible to a recovery that prefers ``g+1``.
        """
        _CHECKPOINT_ROLLBACKS.inc()
        try:
            os.unlink(snapshot_path)
        except FileNotFoundError:
            pass
        except OSError:
            self._poisoned = True
            observe.EVENTS.emit(
                "store_poisoned",
                data_dir=str(self.data_dir),
                generation=self.generation,
                snapshot=snapshot_path.name,
            )
            return
        self._unlink(self.data_dir / wal_name(new_generation))

    def _prune(self, keep: int) -> None:
        """Best-effort removal of *older* generations' files.

        Newer-generation files are never touched here: they can only
        exist when recovery fell back past a snapshot it could not
        validate, and deleting them on open would destroy the newest
        data after a transient fault.  A later :meth:`checkpoint`
        reaching that generation overwrites them legitimately.
        """
        manager = RecoveryManager(self.data_dir)
        for generation in manager.snapshot_generations():
            if generation < keep:
                self._unlink(self.data_dir / snapshot_name(generation))
        for generation in manager.wal_generations():
            if generation < keep:
                self._unlink(self.data_dir / wal_name(generation))

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - prune is best-effort
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the WAL and stop logging; the graph stays usable."""
        if self._closed:
            return
        self._closed = True
        self.graph.remove_listener(self._on_mutation)
        self._wal.close()

    def abandon(self) -> None:
        """Detach without flushing - crash-emulation shutdown.

        The server's fatal path (an injected :class:`SimulatedCrash`)
        must leave the directory exactly as a killed process would:
        buffered WAL records are dropped, nothing is flushed, and the
        next open recovers from what actually reached disk.
        """
        if self._closed:
            return
        self._closed = True
        self.graph.remove_listener(self._on_mutation)
        self._wal.abandon()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True when a failed checkpoint rollback left the directory in
        a state where further appends could be silently lost; the only
        way forward is close + reopen (recovery re-validates)."""
        return self._poisoned or self._wal.failed

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def __enter__(self) -> GraphStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphStore {str(self.data_dir)!r} gen={self.generation} "
            f"{self.graph.summary()}>"
        )
