"""Durable storage for property graphs: snapshots + WAL + recovery.

See ``README.md`` in this directory for the on-disk format (snapshot
header and section layout, WAL record framing, generation protocol and
compaction policy).  Public surface:

* :func:`write_snapshot` / :func:`read_snapshot` - single-file binary
  snapshots of a :class:`~repro.graphdb.graph.PropertyGraph`;
* :class:`WriteAheadLog` / :func:`read_wal` - append-only mutation log
  with batched fsync and torn-tail detection;
* :class:`RecoveryManager` / :func:`recover_graph` - open a data
  directory and reconstruct the latest consistent state;
* :class:`GraphStore` - the live handle tying all three together
  (open / mutate-with-logging / checkpoint / close).
"""

from repro.exceptions import StorageError
from repro.graphdb.storage.codec import CodecError
from repro.graphdb.storage.recovery import (
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
    recover_graph,
)
from repro.graphdb.storage.snapshot import (
    SnapshotError,
    graph_state,
    read_snapshot,
    write_snapshot,
)
from repro.graphdb.storage.store import GraphStore
from repro.graphdb.storage.wal import (
    WalError,
    WalScan,
    WriteAheadLog,
    read_wal,
    replay,
)

__all__ = [
    "CodecError",
    "GraphStore",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "SnapshotError",
    "StorageError",
    "WalError",
    "WalScan",
    "WriteAheadLog",
    "graph_state",
    "read_snapshot",
    "read_wal",
    "recover_graph",
    "replay",
    "write_snapshot",
]
