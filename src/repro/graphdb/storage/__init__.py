"""Durable storage for property graphs: snapshots + WAL + recovery.

See ``README.md`` in this directory for the on-disk format (snapshot
header and section layout, WAL record framing, generation protocol and
compaction policy).  Public surface:

* :func:`write_snapshot` / :func:`read_snapshot` - single-file binary
  snapshots of a :class:`~repro.graphdb.graph.PropertyGraph`;
* :class:`WriteAheadLog` / :func:`read_wal` - append-only mutation log
  with batched fsync and torn-tail detection;
* :class:`RecoveryManager` / :func:`recover_graph` - open a data
  directory and reconstruct the latest consistent state;
* :class:`GraphStore` - the live handle tying all three together
  (open / mutate-with-logging / checkpoint / close);
* :func:`verify_directory` - offline integrity audit of every
  generation's snapshot and WAL (the ``repro verify`` command).

Fault injection for all of the above lives in
:mod:`repro.graphdb.faults`; the failpoint names this package
registers are catalogued in ``docs/RELIABILITY.md``.
"""

from repro.exceptions import StorageError
from repro.graphdb.storage.codec import CodecError
from repro.graphdb.storage.recovery import (
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
    is_store_artifact,
    recover_graph,
)
from repro.graphdb.storage.snapshot import (
    SnapshotError,
    graph_state,
    read_snapshot,
    write_snapshot,
)
from repro.graphdb.storage.store import GraphStore
from repro.graphdb.storage.verify import verify_directory
from repro.graphdb.storage.wal import (
    WalError,
    WalPoisonedError,
    WalScan,
    WriteAheadLog,
    read_wal,
    replay,
)

__all__ = [
    "CodecError",
    "GraphStore",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "SnapshotError",
    "StorageError",
    "WalError",
    "WalPoisonedError",
    "WalScan",
    "WriteAheadLog",
    "graph_state",
    "is_store_artifact",
    "read_snapshot",
    "read_wal",
    "recover_graph",
    "replay",
    "verify_directory",
    "write_snapshot",
]
