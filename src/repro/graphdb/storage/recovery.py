"""Crash recovery: snapshot + WAL tail -> consistent graph.

A data directory holds numbered generations::

    data_dir/
        snapshot-00000003.rpgs     (latest checkpoint)
        wal-00000003.rpgw          (mutations since that checkpoint)

:class:`RecoveryManager` re-establishes the invariant *graph state ==
latest valid snapshot + valid WAL prefix*:

1. load the newest snapshot whose checksums validate, falling back to
   older generations when a checkpoint was torn mid-write (the atomic
   rename makes this rare, but a corrupt disk is still survivable);
2. replay ``wal-<generation>`` up to the first torn or corrupt record
   (a log of a *different* generation is ignored - it predates or
   postdates the snapshot and must not be applied);
3. truncate the torn tail so the log ends on a record boundary and
   appending can resume.

An empty or missing directory recovers to an empty graph at
generation 0, which is how a fresh store is born.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import StorageError
from repro.graphdb import faults, observe
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.snapshot import (
    SnapshotError,
    SnapshotIOError,
    read_snapshot_with_generation,
)
from repro.graphdb.storage.wal import (
    WalError,
    WalIOError,
    read_wal,
    replay,
)

SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.rpgs$")
WAL_PATTERN = re.compile(r"^wal-(\d{8})\.rpgw$")

#: A snapshot that failed validation is renamed aside with this suffix
#: (kept for forensics) so recovery can degrade to an older generation
#: without re-validating the bad file on every open.
QUARANTINE_SUFFIX = ".quarantined"

#: Crash debris from a torn atomic snapshot write.
TMP_PATTERN = re.compile(r"^snapshot-(\d{8})\.rpgs\.tmp$")

FP_TRUNCATE = faults.REGISTRY.register("recovery.wal_truncate")
FP_QUARANTINE = faults.REGISTRY.register("recovery.quarantine")
FP_SWEEP = faults.REGISTRY.register("store.open.sweep")

_RECOVERIES = observe.REGISTRY.counter(
    "repro_recoveries_total", "Recovery passes (store opens)."
)
_RECOVERY_REPLAYED = observe.REGISTRY.counter(
    "repro_recovery_replayed_records_total",
    "WAL records replayed during recovery.",
)
_RECOVERY_TRUNCATED = observe.REGISTRY.counter(
    "repro_recovery_truncated_bytes_total",
    "Torn WAL-tail bytes found by recovery.",
)
_RECOVERY_QUARANTINED = observe.REGISTRY.counter(
    "repro_recovery_quarantined_total",
    "Corrupt snapshots renamed aside during recovery.",
)
_RECOVERY_SWEPT_TMP = observe.REGISTRY.counter(
    "repro_recovery_swept_tmp_total",
    "Orphaned tmp files swept on writable open.",
)
_RECOVERY_SECONDS = observe.REGISTRY.histogram(
    "repro_recovery_seconds", help="Recovery pass wall time."
)


def snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:08d}.rpgs"


def wal_name(generation: int) -> str:
    return f"wal-{generation:08d}.rpgw"


def is_store_artifact(name: str) -> bool:
    """True when ``name`` is a file this subsystem may own and delete:
    a snapshot or WAL of any generation, their tmp debris, or a
    quarantined snapshot."""
    if name.endswith(QUARANTINE_SUFFIX):
        name = name[: -len(QUARANTINE_SUFFIX)]
    if name.endswith(".tmp"):
        name = name[: -len(".tmp")]
    return bool(SNAPSHOT_PATTERN.match(name) or WAL_PATTERN.match(name))


@dataclass
class RecoveryReport:
    """What recovery found and did - surfaced by ``repro load``."""

    data_dir: Path
    generation: int = 0
    snapshot_path: Path | None = None
    wal_path: Path | None = None
    replayed_ops: int = 0
    truncated_bytes: int = 0
    #: Snapshot files that failed validation and were skipped.
    corrupt_snapshots: list[Path] = field(default_factory=list)
    #: Corrupt snapshots renamed aside as ``*.quarantined``.
    quarantined: list[Path] = field(default_factory=list)
    #: Orphaned ``*.tmp`` files (torn atomic writes) swept on open.
    removed_tmp: list[Path] = field(default_factory=list)
    #: WAL files ignored because their generation did not match.
    skipped_wals: list[Path] = field(default_factory=list)

    def summary(self) -> str:
        parts = [f"generation {self.generation}"]
        if self.snapshot_path is None:
            parts.append("fresh store (no snapshot)")
        else:
            parts.append(f"snapshot {self.snapshot_path.name}")
        parts.append(f"{self.replayed_ops} WAL ops replayed")
        if self.truncated_bytes:
            parts.append(
                f"{self.truncated_bytes} torn byte(s) truncated"
            )
        if self.corrupt_snapshots:
            parts.append(
                f"{len(self.corrupt_snapshots)} corrupt snapshot(s) skipped"
            )
        if self.quarantined:
            parts.append(
                f"{len(self.quarantined)} quarantined"
            )
        if self.removed_tmp:
            parts.append(
                f"{len(self.removed_tmp)} orphaned tmp file(s) removed"
            )
        return ", ".join(parts)


class RecoveryError(StorageError):
    """Raised when no consistent state can be reconstructed."""


class RecoveryManager:
    """Opens a data directory and reconstructs the latest valid state."""

    def __init__(self, data_dir: str | Path, graph_name: str | None = None):
        self.data_dir = Path(data_dir)
        self.graph_name = graph_name

    # -- directory scanning -------------------------------------------
    def snapshot_generations(self) -> list[int]:
        """Snapshot generations on disk, newest first."""
        return self._generations(SNAPSHOT_PATTERN)

    def wal_generations(self) -> list[int]:
        return self._generations(WAL_PATTERN)

    def _generations(self, pattern: re.Pattern) -> list[int]:
        if not self.data_dir.is_dir():
            return []
        found = []
        for name in os.listdir(self.data_dir):
            match = pattern.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found, reverse=True)

    # -- recovery ------------------------------------------------------
    def recover(
        self, truncate: bool = True
    ) -> tuple[PropertyGraph, RecoveryReport]:
        """Load the newest valid snapshot and replay its WAL tail.

        With ``truncate=False`` the torn tail is left on disk (read-only
        openers must not write); the returned graph is identical either
        way.  Writable recovery (``truncate=True``) additionally sweeps
        orphaned ``*.tmp`` files (debris of a torn atomic snapshot
        write) and renames corrupt snapshots aside as
        ``*.quarantined`` - degrading to the newest older valid
        generation instead of re-tripping on the bad file forever.
        """
        started = time.perf_counter()
        report = RecoveryReport(data_dir=self.data_dir)
        if truncate:
            self._sweep_tmp(report)
        graph: PropertyGraph | None = None
        for generation in self.snapshot_generations():
            path = self.data_dir / snapshot_name(generation)
            try:
                graph, snap_gen = read_snapshot_with_generation(path)
            except SnapshotIOError as exc:
                # Transient read failure, not corruption: falling back
                # would fork history and later prune the newest
                # generation's data.  Abort and let the caller retry.
                raise RecoveryError(str(exc)) from exc
            except SnapshotError:
                report.corrupt_snapshots.append(path)
                continue
            # The filename is what the directory protocol keys on; the
            # embedded generation (snap_gen) is informational only.
            del snap_gen
            report.generation = generation
            report.snapshot_path = path
            break
        if graph is None:
            if report.corrupt_snapshots:
                raise RecoveryError(
                    f"every snapshot in {self.data_dir} is corrupt: "
                    + ", ".join(
                        p.name for p in report.corrupt_snapshots
                    )
                )
            graph = PropertyGraph(
                self.graph_name or self.data_dir.name or "graph"
            )
            report.generation = 0
        elif truncate:
            # Quarantine only once a valid fallback exists.  Renaming
            # eagerly would be destructive when *every* generation is
            # corrupt: the next open would find an empty directory and
            # silently start fresh instead of surfacing RecoveryError.
            for path in report.corrupt_snapshots:
                self._quarantine(path, report)

        self._replay_wal(graph, report, truncate)
        _RECOVERIES.inc()
        _RECOVERY_REPLAYED.inc(report.replayed_ops)
        _RECOVERY_TRUNCATED.inc(report.truncated_bytes)
        _RECOVERY_SWEPT_TMP.inc(len(report.removed_tmp))
        _RECOVERY_SECONDS.observe(time.perf_counter() - started)
        observe.EVENTS.emit(
            "recovery",
            data_dir=str(self.data_dir),
            generation=report.generation,
            replayed_ops=report.replayed_ops,
            truncated_bytes=report.truncated_bytes,
            quarantined=len(report.quarantined),
            removed_tmp=len(report.removed_tmp),
            writable=truncate,
        )
        return graph, report

    def _replay_wal(
        self,
        graph: PropertyGraph,
        report: RecoveryReport,
        truncate: bool,
    ) -> None:
        wal_path = self.data_dir / wal_name(report.generation)
        for generation in self.wal_generations():
            path = self.data_dir / wal_name(generation)
            if generation != report.generation:
                report.skipped_wals.append(path)
        if not wal_path.exists():
            return
        try:
            scan = read_wal(wal_path)
        except WalIOError as exc:
            # Transient read failure: abort rather than mistake an
            # unreadable log for crash debris and delete it.
            raise RecoveryError(str(exc)) from exc
        except WalError:
            # Unusable header: the log carries no applicable records.
            # Treat like a fully torn file - rewriting starts fresh.
            report.wal_path = wal_path
            report.truncated_bytes = wal_path.stat().st_size
            if truncate:
                wal_path.unlink()
            return
        if scan.generation != report.generation:
            report.skipped_wals.append(wal_path)
            return
        report.wal_path = wal_path
        report.replayed_ops = replay(graph, scan)
        report.truncated_bytes = scan.torn_bytes
        if truncate and scan.torn_bytes:
            faults.fire(FP_TRUNCATE)
            with open(wal_path, "r+b") as fh:
                fh.truncate(scan.valid_end)
                fh.flush()
                faults.retrying(
                    lambda: os.fsync(fh.fileno()),
                    "fsync truncated WAL",
                )

    # -- hygiene -------------------------------------------------------
    def _sweep_tmp(self, report: RecoveryReport) -> None:
        """Remove orphaned ``*.tmp`` debris from torn atomic writes.

        A crash between ``open(tmp)`` and ``os.replace`` leaves a
        partial file that no reader ever consults; sweeping it on the
        next writable open keeps the directory self-describing.  An
        unlink that fails is tolerated - the file is inert either way.
        """
        if not self.data_dir.is_dir():
            return
        for name in sorted(os.listdir(self.data_dir)):
            if not name.endswith(".tmp") or not is_store_artifact(name):
                continue
            path = self.data_dir / name
            try:
                faults.fire(FP_SWEEP)
                path.unlink()
            except OSError:
                continue
            report.removed_tmp.append(path)

    def _quarantine(self, path: Path, report: RecoveryReport) -> None:
        """Rename a corrupt snapshot aside as ``*.quarantined``.

        Keeps the bytes for forensics while guaranteeing the next open
        does not pay to re-validate (and re-reject) the same file.  A
        failed rename is tolerated: recovery already skipped the file.
        """
        try:
            faults.fire(FP_QUARANTINE)
            os.replace(path, path.with_name(path.name + QUARANTINE_SUFFIX))
        except OSError:
            return
        report.quarantined.append(path)
        _RECOVERY_QUARANTINED.inc()
        observe.EVENTS.emit("quarantine", path=str(path))


def recover_graph(data_dir: str | Path) -> PropertyGraph:
    """Read-only convenience: the recovered graph, nothing persisted."""
    graph, _report = RecoveryManager(data_dir).recover(truncate=False)
    return graph
