"""Crash recovery: snapshot + WAL tail -> consistent graph.

A data directory holds numbered generations::

    data_dir/
        snapshot-00000003.rpgs     (latest checkpoint)
        wal-00000003.rpgw          (mutations since that checkpoint)

:class:`RecoveryManager` re-establishes the invariant *graph state ==
latest valid snapshot + valid WAL prefix*:

1. load the newest snapshot whose checksums validate, falling back to
   older generations when a checkpoint was torn mid-write (the atomic
   rename makes this rare, but a corrupt disk is still survivable);
2. replay ``wal-<generation>`` up to the first torn or corrupt record
   (a log of a *different* generation is ignored - it predates or
   postdates the snapshot and must not be applied);
3. truncate the torn tail so the log ends on a record boundary and
   appending can resume.

An empty or missing directory recovers to an empty graph at
generation 0, which is how a fresh store is born.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.snapshot import (
    SnapshotError,
    SnapshotIOError,
    read_snapshot_with_generation,
)
from repro.graphdb.storage.wal import (
    WalError,
    WalIOError,
    read_wal,
    replay,
)

SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.rpgs$")
WAL_PATTERN = re.compile(r"^wal-(\d{8})\.rpgw$")


def snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:08d}.rpgs"


def wal_name(generation: int) -> str:
    return f"wal-{generation:08d}.rpgw"


@dataclass
class RecoveryReport:
    """What recovery found and did - surfaced by ``repro load``."""

    data_dir: Path
    generation: int = 0
    snapshot_path: Path | None = None
    wal_path: Path | None = None
    replayed_ops: int = 0
    truncated_bytes: int = 0
    #: Snapshot files that failed validation and were skipped.
    corrupt_snapshots: list[Path] = field(default_factory=list)
    #: WAL files ignored because their generation did not match.
    skipped_wals: list[Path] = field(default_factory=list)

    def summary(self) -> str:
        parts = [f"generation {self.generation}"]
        if self.snapshot_path is None:
            parts.append("fresh store (no snapshot)")
        else:
            parts.append(f"snapshot {self.snapshot_path.name}")
        parts.append(f"{self.replayed_ops} WAL ops replayed")
        if self.truncated_bytes:
            parts.append(
                f"{self.truncated_bytes} torn byte(s) truncated"
            )
        if self.corrupt_snapshots:
            parts.append(
                f"{len(self.corrupt_snapshots)} corrupt snapshot(s) skipped"
            )
        return ", ".join(parts)


class RecoveryError(StorageError):
    """Raised when no consistent state can be reconstructed."""


class RecoveryManager:
    """Opens a data directory and reconstructs the latest valid state."""

    def __init__(self, data_dir: str | Path, graph_name: str | None = None):
        self.data_dir = Path(data_dir)
        self.graph_name = graph_name

    # -- directory scanning -------------------------------------------
    def snapshot_generations(self) -> list[int]:
        """Snapshot generations on disk, newest first."""
        return self._generations(SNAPSHOT_PATTERN)

    def wal_generations(self) -> list[int]:
        return self._generations(WAL_PATTERN)

    def _generations(self, pattern: re.Pattern) -> list[int]:
        if not self.data_dir.is_dir():
            return []
        found = []
        for name in os.listdir(self.data_dir):
            match = pattern.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found, reverse=True)

    # -- recovery ------------------------------------------------------
    def recover(
        self, truncate: bool = True
    ) -> tuple[PropertyGraph, RecoveryReport]:
        """Load the newest valid snapshot and replay its WAL tail.

        With ``truncate=False`` the torn tail is left on disk (read-only
        openers must not write); the returned graph is identical either
        way.
        """
        report = RecoveryReport(data_dir=self.data_dir)
        graph: PropertyGraph | None = None
        for generation in self.snapshot_generations():
            path = self.data_dir / snapshot_name(generation)
            try:
                graph, snap_gen = read_snapshot_with_generation(path)
            except SnapshotIOError as exc:
                # Transient read failure, not corruption: falling back
                # would fork history and later prune the newest
                # generation's data.  Abort and let the caller retry.
                raise RecoveryError(str(exc)) from exc
            except SnapshotError:
                report.corrupt_snapshots.append(path)
                continue
            # The filename is what the directory protocol keys on; the
            # embedded generation (snap_gen) is informational only.
            del snap_gen
            report.generation = generation
            report.snapshot_path = path
            break
        if graph is None:
            if report.corrupt_snapshots:
                raise RecoveryError(
                    f"every snapshot in {self.data_dir} is corrupt: "
                    + ", ".join(
                        p.name for p in report.corrupt_snapshots
                    )
                )
            graph = PropertyGraph(
                self.graph_name or self.data_dir.name or "graph"
            )
            report.generation = 0

        self._replay_wal(graph, report, truncate)
        return graph, report

    def _replay_wal(
        self,
        graph: PropertyGraph,
        report: RecoveryReport,
        truncate: bool,
    ) -> None:
        wal_path = self.data_dir / wal_name(report.generation)
        for generation in self.wal_generations():
            path = self.data_dir / wal_name(generation)
            if generation != report.generation:
                report.skipped_wals.append(path)
        if not wal_path.exists():
            return
        try:
            scan = read_wal(wal_path)
        except WalIOError as exc:
            # Transient read failure: abort rather than mistake an
            # unreadable log for crash debris and delete it.
            raise RecoveryError(str(exc)) from exc
        except WalError:
            # Unusable header: the log carries no applicable records.
            # Treat like a fully torn file - rewriting starts fresh.
            report.wal_path = wal_path
            report.truncated_bytes = wal_path.stat().st_size
            if truncate:
                wal_path.unlink()
            return
        if scan.generation != report.generation:
            report.skipped_wals.append(wal_path)
            return
        report.wal_path = wal_path
        report.replayed_ops = replay(graph, scan)
        report.truncated_bytes = scan.torn_bytes
        if truncate and scan.torn_bytes:
            with open(wal_path, "r+b") as fh:
                fh.truncate(scan.valid_end)
                fh.flush()
                os.fsync(fh.fileno())


def recover_graph(data_dir: str | Path) -> PropertyGraph:
    """Read-only convenience: the recovered graph, nothing persisted."""
    graph, _report = RecoveryManager(data_dir).recover(truncate=False)
    return graph
