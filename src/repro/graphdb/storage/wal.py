"""Append-only write-ahead log for :class:`PropertyGraph` mutations.

File layout::

    header:  magic "RPGWAL01" (8) | version u16 | flags u16 |
             generation u64 | crc u32 (over the preceding 20 bytes)
    record:  length u32 | crc u32 (over payload) | payload
    payload: opcode u8 | opcode-specific fields (codec varints/values)

The ``generation`` ties a log to the snapshot it extends: recovery only
replays ``wal-<g>`` on top of ``snapshot-<g>``, so a stale log from an
older generation can never be double-applied after compaction.

Each record frames exactly one logical mutation.  The length + CRC
framing makes torn tails self-describing: replay stops at the first
record whose header is short, whose payload is short, or whose CRC
fails, and reports the byte offset of the last good record so the
caller can truncate the file there.

Transactions add BEGIN / COMMIT / ROLLBACK *framing records* (emitted
by :meth:`PropertyGraph.begin_transaction` and friends through the
same listener hook).  :func:`read_wal` resolves frames during the
scan: a frame's mutations only count once its COMMIT is on disk, a
ROLLBACK drops them, and a frame still open at end-of-log is an
uncommitted tail - reported (and truncated) exactly like a torn
record, so crash recovery lands on the pre-transaction state.

Appends are buffered and flushed in batches (``sync="batch"``, the
default: every ``batch_ops`` records or ``batch_bytes`` bytes, and on
:meth:`WriteAheadLog.flush` / :meth:`WriteAheadLog.close`).  ``"always"``
fsyncs every append (maximum durability, slowest) and ``"never"``
leaves flushing to the OS (fastest; a crash can lose the buffered
tail but never corrupts the prefix).
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import GraphError, StorageError
from repro.graphdb import faults, observe
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.codec import (
    CodecError,
    read_props,
    read_str,
    read_uvarint,
    read_value,
    write_props,
    write_str,
    write_uvarint,
    write_value,
)

MAGIC = b"RPGWAL01"
FORMAT_VERSION = 1

#: Metric handles (see :mod:`repro.graphdb.observe`); an update while
#: the registry is disabled is a single flag check, same budget as a
#: disarmed failpoint.
_WAL_APPENDS = observe.REGISTRY.counter(
    "repro_wal_appends_total", "Records appended to the WAL."
)
_WAL_FLUSHES = observe.REGISTRY.counter(
    "repro_wal_flushes_total", "WAL flushes (batch or explicit)."
)
_WAL_FLUSHED_BYTES = observe.REGISTRY.counter(
    "repro_wal_flushed_bytes_total", "Record bytes written by WAL flushes."
)
_WAL_POISONED = observe.REGISTRY.counter(
    "repro_wal_poisoned_total",
    "Times a WAL poisoned itself after an uncertain write.",
)
_WAL_BATCH_RECORDS = observe.REGISTRY.histogram(
    "repro_wal_batch_records",
    buckets=observe.DEFAULT_SIZE_BUCKETS,
    help="Records per flushed WAL batch.",
)
_WAL_FSYNC_SECONDS = observe.REGISTRY.histogram(
    "repro_wal_fsync_seconds", help="WAL fsync wall time."
)
_WAL_GROUP_COMMIT_BATCH = observe.REGISTRY.histogram(
    "repro_wal_group_commit_batch_size",
    buckets=observe.DEFAULT_SIZE_BUCKETS,
    help="Transaction commits made durable per group-commit fsync.",
)
_WAL_SIZE_BYTES = observe.REGISTRY.gauge(
    "repro_wal_size_bytes",
    "On-disk size of the most recently flushed WAL (buffered tail "
    "included).",
)

#: Failpoints threaded through this module (see
#: :mod:`repro.graphdb.faults`); a disarmed hook is one dict probe.
FP_CREATE_WRITE = faults.REGISTRY.register("wal.create.write")
FP_CREATE_FSYNC = faults.REGISTRY.register("wal.create.fsync")
FP_DIR_FSYNC = faults.REGISTRY.register("wal.dir_fsync")
FP_FLUSH_WRITE = faults.REGISTRY.register("wal.flush.write")
FP_PRE_FSYNC = faults.REGISTRY.register("wal.append.pre_fsync")
FP_FLUSH_FSYNC = faults.REGISTRY.register("wal.flush.fsync")
FP_READ = faults.REGISTRY.register("wal.read")

_HEADER = struct.Struct("<8sHHQI")
_RECORD = struct.Struct("<II")

#: A single WAL record larger than this is treated as corruption.
MAX_RECORD_BYTES = 64 * 1024 * 1024

OP_ADD_VERTEX = 1
OP_ADD_EDGE = 2
OP_SET_PROPERTY = 3
OP_REMOVE_PROPERTY = 4
OP_REMOVE_EDGE = 5
OP_REMOVE_VERTEX = 6
OP_CREATE_INDEX = 7
#: Transaction framing records (payload is the bare opcode).  The
#: mutations between a BEGIN and its COMMIT form one atomic frame:
#: :func:`read_wal` only surfaces a frame's mutations once the COMMIT
#: record is seen, drops frames closed by a ROLLBACK, and treats a
#: frame still open at end-of-log as crash debris (truncated like a
#: torn record, so recovery lands on the pre-transaction state).
OP_TX_BEGIN = 8
OP_TX_COMMIT = 9
OP_TX_ROLLBACK = 10

#: Mutation name (the :class:`PropertyGraph` listener vocabulary)
#: to opcode and back.
OPCODE_OF = {
    "add_vertex": OP_ADD_VERTEX,
    "add_edge": OP_ADD_EDGE,
    "set_property": OP_SET_PROPERTY,
    "remove_property": OP_REMOVE_PROPERTY,
    "remove_edge": OP_REMOVE_EDGE,
    "remove_vertex": OP_REMOVE_VERTEX,
    "create_property_index": OP_CREATE_INDEX,
    "tx_begin": OP_TX_BEGIN,
    "tx_commit": OP_TX_COMMIT,
    "tx_rollback": OP_TX_ROLLBACK,
}
OP_NAME = {code: name for name, code in OPCODE_OF.items()}

#: Framing records: no payload beyond the opcode, never replayed.
TX_OPS = frozenset({"tx_begin", "tx_commit", "tx_rollback"})


class WalError(StorageError):
    """Raised for invalid WAL files or unsupported mutations."""


class WalIOError(WalError):
    """The log could not be *read* (transient I/O, permissions, ...).

    Distinct from header corruption: recovery must abort on I/O
    failures rather than treat the log as crash debris and discard it.
    """


class WalPoisonedError(WalError):
    """The log refused an append after an earlier uncertain write.

    Once a write or fsync fails mid-record the on-disk tail is in an
    unknown state; appending more records after it could make them
    unreachable (replay stops at the first tear), silently losing
    acknowledged data.  The only safe continuation is to reopen the
    store, which re-establishes the log's valid end.
    """


def fsync_dir(directory: Path) -> None:
    """Make a file creation/rename durable by fsyncing its directory."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        faults.retrying(
            lambda: (faults.fire(FP_DIR_FSYNC), os.fsync(fd)),
            "fsync WAL directory",
        )
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Mutation payload codec
# ----------------------------------------------------------------------
def encode_mutation(op: str, args: tuple) -> bytes:
    """Encode one listener event ``(op, args)`` into a record payload."""
    try:
        opcode = OPCODE_OF[op]
    except KeyError:
        raise WalError(f"unsupported mutation {op!r}") from None
    buf = bytearray((opcode,))
    if opcode == OP_ADD_VERTEX:
        vid, labels, props = args
        write_uvarint(buf, vid)
        ordered = sorted(labels)
        write_uvarint(buf, len(ordered))
        for label in ordered:
            write_str(buf, label)
        write_props(buf, props)
    elif opcode == OP_ADD_EDGE:
        eid, src, dst, label, props = args
        write_uvarint(buf, eid)
        write_uvarint(buf, src)
        write_uvarint(buf, dst)
        write_str(buf, label)
        write_props(buf, props)
    elif opcode == OP_SET_PROPERTY:
        vid, name, value = args
        write_uvarint(buf, vid)
        write_str(buf, name)
        write_value(buf, value)
    elif opcode == OP_REMOVE_PROPERTY:
        vid, name = args
        write_uvarint(buf, vid)
        write_str(buf, name)
    elif opcode in (OP_REMOVE_EDGE, OP_REMOVE_VERTEX):
        write_uvarint(buf, args[0])
    elif opcode == OP_CREATE_INDEX:
        label, prop = args
        write_str(buf, label)
        write_str(buf, prop)
    # else: transaction framing - the opcode byte is the whole payload
    return bytes(buf)


def decode_mutation(payload: bytes) -> tuple[str, tuple]:
    """Inverse of :func:`encode_mutation`; raises :class:`CodecError`."""
    if not payload:
        raise CodecError("empty WAL payload")
    opcode = payload[0]
    pos = 1
    if opcode == OP_ADD_VERTEX:
        vid, pos = read_uvarint(payload, pos)
        nlabels, pos = read_uvarint(payload, pos)
        labels = []
        for _ in range(nlabels):
            label, pos = read_str(payload, pos)
            labels.append(label)
        props, pos = read_props(payload, pos)
        return "add_vertex", (vid, frozenset(labels), props)
    if opcode == OP_ADD_EDGE:
        eid, pos = read_uvarint(payload, pos)
        src, pos = read_uvarint(payload, pos)
        dst, pos = read_uvarint(payload, pos)
        label, pos = read_str(payload, pos)
        props, pos = read_props(payload, pos)
        return "add_edge", (eid, src, dst, label, props)
    if opcode == OP_SET_PROPERTY:
        vid, pos = read_uvarint(payload, pos)
        name, pos = read_str(payload, pos)
        value, pos = read_value(payload, pos)
        return "set_property", (vid, name, value)
    if opcode == OP_REMOVE_PROPERTY:
        vid, pos = read_uvarint(payload, pos)
        name, pos = read_str(payload, pos)
        return "remove_property", (vid, name)
    if opcode == OP_REMOVE_EDGE:
        eid, pos = read_uvarint(payload, pos)
        return "remove_edge", (eid,)
    if opcode == OP_REMOVE_VERTEX:
        vid, pos = read_uvarint(payload, pos)
        return "remove_vertex", (vid,)
    if opcode == OP_CREATE_INDEX:
        label, pos = read_str(payload, pos)
        prop, pos = read_str(payload, pos)
        return "create_property_index", (label, prop)
    if opcode in (OP_TX_BEGIN, OP_TX_COMMIT, OP_TX_ROLLBACK):
        return OP_NAME[opcode], ()
    raise CodecError(f"unknown WAL opcode {opcode}")


def apply_mutation(graph: PropertyGraph, op: str, args: tuple) -> None:
    """Replay one decoded mutation onto ``graph``.

    ``add_vertex`` / ``add_edge`` verify that the graph assigns the id
    the log recorded - a mismatch means the log is being replayed on
    the wrong base state, which is an error, not a torn tail.
    """
    if op == "add_vertex":
        vid, labels, props = args
        got = graph.add_vertex(labels, props)
        if got != vid:
            raise WalError(
                f"replayed add_vertex produced vid {got}, log says {vid}"
            )
    elif op == "add_edge":
        eid, src, dst, label, props = args
        got = graph.add_edge(src, dst, label, props)
        if got != eid:
            raise WalError(
                f"replayed add_edge produced eid {got}, log says {eid}"
            )
    elif op == "set_property":
        graph.set_property(*args)
    elif op == "remove_property":
        graph.remove_property(*args)
    elif op == "remove_edge":
        eid = args[0]
        # remove_vertex logs its cascaded edge removals individually,
        # so a replayed remove_edge may find the edge already gone.
        if eid in graph._edges:
            graph.remove_edge(eid)
    elif op == "remove_vertex":
        graph.remove_vertex(args[0])
    elif op == "create_property_index":
        graph.create_property_index(*args)
    elif op in TX_OPS:
        # Framing records are resolved by read_wal (frames are applied
        # or dropped wholesale); one reaching replay is a logic error.
        raise WalError(f"framing record {op!r} cannot be replayed")
    else:
        raise WalError(f"unsupported mutation {op!r}")


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class WriteAheadLog:
    """Appender for one generation's log file."""

    def __init__(
        self,
        path: str | Path,
        generation: int,
        sync: str = "batch",
        batch_ops: int = 64,
        batch_bytes: int = 256 * 1024,
    ):
        if sync not in ("always", "batch", "never"):
            raise WalError(f"unknown sync mode {sync!r}")
        self.path = Path(path)
        self.generation = generation
        self.sync = sync
        self.batch_ops = max(1, batch_ops)
        self.batch_bytes = max(1, batch_bytes)
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self.records_appended = 0
        #: Buffer lock: guards the pending-record list so an appender
        #: on the event-loop thread and a group-commit flush running in
        #: an executor thread never race on the batch swap.  Held only
        #: for list manipulation, never across I/O.
        self._buffer_lock = threading.Lock()
        #: Write lock: serializes whole flushes (write + fsync), so two
        #: overlapping group commits cannot interleave their batches on
        #: disk.  Appends do NOT take it - buffering stays wait-free
        #: while an fsync is in flight.
        self._write_lock = threading.Lock()
        #: Set after an uncertain write failure; see
        #: :class:`WalPoisonedError`.
        self._failed = False
        new = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if new:
            header = bytearray(
                _HEADER.pack(MAGIC, FORMAT_VERSION, 0, generation, 0)
            )
            header[-4:] = struct.pack("<I", zlib.crc32(bytes(header[:-4])))
            try:
                faults.write(FP_CREATE_WRITE, self._fh, bytes(header))
                self._fh.flush()
                faults.retrying(
                    lambda: (
                        faults.fire(FP_CREATE_FSYNC),
                        os.fsync(self._fh.fileno()),
                    ),
                    "fsync new WAL header",
                )
            except BaseException:
                self._failed = True
                _WAL_POISONED.inc()
                observe.EVENTS.emit(
                    "wal_poisoned",
                    path=str(self.path),
                    generation=generation,
                )
                raise
            # The file itself must survive a crash, not just its
            # contents - otherwise fsynced records vanish with the
            # unflushed directory entry.
            fsync_dir(self.path.parent)

    # -- appends -------------------------------------------------------
    def append(self, op: str, args: tuple) -> None:
        if self._failed:
            raise WalPoisonedError(
                f"WAL {self.path.name} is poisoned after an earlier "
                "I/O failure; reopen the store to resume writing"
            )
        payload = encode_mutation(op, args)
        record = _RECORD.pack(len(payload), zlib.crc32(payload)) + payload
        with self._buffer_lock:
            self._pending.append(record)
            self._pending_bytes += len(record)
            self.records_appended += 1
            pending_records = len(self._pending)
            pending_bytes = self._pending_bytes
        _WAL_APPENDS.inc()
        if self.sync == "always":
            self.flush()
        elif self.sync == "batch" and (
            pending_records >= self.batch_ops
            or pending_bytes >= self.batch_bytes
        ):
            self.flush()

    def flush(self, fsync: bool | None = None) -> None:
        """Write buffered records; fsync unless the mode is ``never``.

        Any failure past this point leaves the on-disk tail in an
        unknown state (a record may be half-written, an fsync may or
        may not have landed), so the log poisons itself: further
        appends raise :class:`WalPoisonedError` until the store is
        reopened and recovery re-establishes the valid end.  Transient
        ``EINTR``/``EAGAIN`` fsync failures are retried with bounded
        backoff before poisoning.

        Thread contract: whole flushes serialize on the write lock, and
        the pending batch is detached under the buffer lock, so a flush
        running in an executor thread (the server's group commit) only
        ever covers records fully appended before its swap - later
        appends land in the next batch.
        """
        with self._write_lock:
            if self._failed:
                raise WalPoisonedError(
                    f"WAL {self.path.name} is poisoned after an earlier "
                    "I/O failure; reopen the store to resume writing"
                )
            try:
                # Detach *before* writing: a torn write must not be
                # re-attempted after the same bytes partially landed.
                with self._buffer_lock:
                    batch_records = len(self._pending)
                    if batch_records:
                        batch = b"".join(self._pending)
                        self._pending.clear()
                        self._pending_bytes = 0
                    else:
                        batch = b""
                if batch:
                    faults.write(FP_FLUSH_WRITE, self._fh, batch)
                    _WAL_FLUSHED_BYTES.inc(len(batch))
                    _WAL_BATCH_RECORDS.observe(batch_records)
                self._fh.flush()
                if fsync is None:
                    fsync = self.sync != "never"
                if fsync:
                    faults.fire(FP_PRE_FSYNC)
                    timing = observe.REGISTRY.enabled
                    started = time.perf_counter() if timing else 0.0
                    faults.retrying(
                        lambda: (
                            faults.fire(FP_FLUSH_FSYNC),
                            os.fsync(self._fh.fileno()),
                        ),
                        "fsync WAL",
                    )
                    if timing:
                        _WAL_FSYNC_SECONDS.observe(
                            time.perf_counter() - started
                        )
                _WAL_FLUSHES.inc()
                _WAL_SIZE_BYTES.set(self._fh.tell())
            except BaseException:
                self._failed = True
                _WAL_POISONED.inc()
                observe.EVENTS.emit(
                    "wal_poisoned",
                    path=str(self.path),
                    generation=self.generation,
                )
                raise

    def group_commit(self, commits: int) -> None:
        """One durable fsync covering ``commits`` acknowledged commits.

        The transaction commits themselves were already appended (WAL
        records buffer in memory until a flush); this forces the whole
        batch to disk with a single fsync and records how many commits
        it amortized over.  One caller at a time actually syncs (the
        write lock serializes); concurrent callers simply ride behind
        it, which is exactly the group-commit contract the server's
        writer task relies on.
        """
        self.flush(fsync=True)
        if commits > 0:
            _WAL_GROUP_COMMIT_BATCH.observe(commits)

    @property
    def failed(self) -> bool:
        return self._failed

    def abandon(self) -> None:
        """Drop buffered records and refuse all further writes.

        Used when the process is going down *as if* killed (the
        server's fatal-crash path): nothing buffered may be flushed on
        the way out, because a real ``kill -9`` would not have flushed
        it either - recovery must re-establish the valid end of the
        log from what actually reached disk.
        """
        self._failed = True

    def size_bytes(self) -> int:
        """Current on-disk size plus the buffered tail."""
        return self._fh.tell() + self._pending_bytes

    def close(self) -> None:
        if self._fh.closed:
            return
        if self._failed:
            # Nothing buffered can be trusted onto the torn tail; the
            # file handle is released as-is and recovery will truncate.
            self._fh.close()
            return
        self.flush()
        self._fh.close()

    def __enter__(self) -> WriteAheadLog:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
@dataclass
class WalScan:
    """Result of scanning a log file up to its last durable record.

    ``records`` holds only *applicable* mutations: transaction frames
    are resolved during the scan - a committed frame's mutations
    appear inline (framing records themselves never do), a rolled-back
    frame's are dropped, and a frame left open at end-of-log is
    treated as an uncommitted tail that never became durable.
    """

    generation: int
    records: list[tuple[str, tuple]]
    #: Byte offset just past the last durable record; anything beyond
    #: it (torn records, an uncommitted transaction frame) is a tail
    #: that recovery truncates.
    valid_end: int
    file_size: int

    @property
    def torn_bytes(self) -> int:
        return self.file_size - self.valid_end


def read_wal(path: str | Path) -> WalScan:
    """Scan a WAL, collecting every valid record before the first tear.

    Raises :class:`WalError` only when the *header* is unusable (wrong
    magic or version, or too short to have been created by
    :class:`WriteAheadLog` at all); damage after the header is normal
    crash debris and is reported via :attr:`WalScan.valid_end`.
    """
    path = Path(path)
    try:
        faults.fire(FP_READ)
        data = path.read_bytes()
    except OSError as exc:
        raise WalIOError(f"cannot read WAL {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise WalError(f"WAL {path} too short for header")
    magic, version, _flags, generation, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WalError(f"{path} is not a WAL (bad magic)")
    if version != FORMAT_VERSION:
        raise WalError(f"WAL {path} has unsupported version {version}")
    if zlib.crc32(data[:_HEADER.size - 4]) != crc:
        raise WalError(f"WAL {path}: header checksum")

    records: list[tuple[str, tuple]] = []
    pos = _HEADER.size
    valid_end = pos
    size = len(data)
    #: Mutations of the currently-open transaction frame (None when
    #: outside a frame).  valid_end deliberately stays put while a
    #: frame is open: only its COMMIT/ROLLBACK record makes the frame
    #: durable, so a crash inside the frame truncates it wholesale.
    frame: list[tuple[str, tuple]] | None = None
    while pos + _RECORD.size <= size:
        length, crc = _RECORD.unpack_from(data, pos)
        body_start = pos + _RECORD.size
        body_end = body_start + length
        if length > MAX_RECORD_BYTES or body_end > size:
            break  # torn tail
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            break
        try:
            op, args = decode_mutation(payload)
        except CodecError:
            break
        pos = body_end
        if op == "tx_begin":
            if frame is not None:
                break  # nested BEGIN: corrupt framing
            frame = []
        elif op == "tx_commit":
            if frame is None:
                break  # COMMIT without BEGIN: corrupt framing
            records.extend(frame)
            frame = None
            valid_end = pos
        elif op == "tx_rollback":
            if frame is None:
                break
            frame = None
            valid_end = pos
        elif frame is not None:
            frame.append((op, args))
        else:
            records.append((op, args))
            valid_end = pos
    return WalScan(
        generation=generation,
        records=records,
        valid_end=valid_end,
        file_size=size,
    )


def replay(graph: PropertyGraph, scan: WalScan) -> int:
    """Apply every scanned record to ``graph``; returns the op count."""
    for op, args in scan.records:
        try:
            apply_mutation(graph, op, args)
        except GraphError as exc:
            raise WalError(
                f"WAL replay failed on {op}{args!r}: {exc}"
            ) from exc
    return len(scan.records)
