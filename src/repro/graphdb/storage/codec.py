"""Binary encoding primitives shared by the snapshot codec and the WAL.

Everything on disk is built from three building blocks:

* **uvarint** - unsigned LEB128 (7 bits per byte, high bit = continue),
  the standard protobuf wire encoding for small non-negative integers;
* **svarint** - zigzag-mapped signed varint, so small negative ints stay
  short;
* **tagged values** - one tag byte followed by a tag-specific payload,
  covering every property type a :class:`~repro.graphdb.graph.Vertex`
  or :class:`~repro.graphdb.graph.Edge` can carry (``None``, bools,
  ints, floats, strings and nested lists thereof).

Encoders append to a ``bytearray``; decoders take ``(data, pos)`` and
return ``(value, new_pos)`` so callers can walk a buffer without
slicing it.  Malformed input raises :class:`CodecError`, which the
snapshot reader and the WAL replayer translate into "corrupt record".
"""

from __future__ import annotations

import struct

from repro.exceptions import StorageError


class CodecError(StorageError):
    """Raised when a buffer cannot be decoded (truncated or malformed)."""


# Value tags.  Appending new tags is a compatible change; reusing or
# renumbering existing ones requires a snapshot/WAL version bump.
TAG_NONE = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_INT = 3
TAG_FLOAT = 4
TAG_STR = 5
TAG_LIST = 6

_FLOAT = struct.Struct("<d")

#: Decoding refuses single fields larger than this (64 MiB): a length
#: prefix beyond it means a torn or corrupt buffer, not real data.
MAX_FIELD_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def write_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    end = len(data)
    while True:
        if pos >= end:
            raise CodecError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # Property values may be arbitrary-precision Python ints; the
        # cap only guards against runaway continuation bits in corrupt
        # buffers (512 bits is far beyond any sane property value).
        if shift > 511:
            raise CodecError("uvarint too long")


def write_svarint(buf: bytearray, value: int) -> None:
    """Zigzag-encoded signed varint (-1 -> 1, 1 -> 2, -2 -> 3, ...)."""
    write_uvarint(
        buf, value << 1 if value >= 0 else ((-value) << 1) - 1
    )


def read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------
def write_str(buf: bytearray, value: str) -> None:
    encoded = value.encode("utf-8")
    write_uvarint(buf, len(encoded))
    buf += encoded


def read_str(data: bytes, pos: int) -> tuple[str, int]:
    length, pos = read_uvarint(data, pos)
    if length > MAX_FIELD_BYTES:
        raise CodecError(f"string length {length} exceeds limit")
    end = pos + length
    if end > len(data):
        raise CodecError("truncated string")
    try:
        return data[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid utf-8: {exc}") from None


# ----------------------------------------------------------------------
# Tagged property values
# ----------------------------------------------------------------------
def write_value(buf: bytearray, value: object) -> None:
    if value is None:
        buf.append(TAG_NONE)
    elif value is True:
        buf.append(TAG_TRUE)
    elif value is False:
        buf.append(TAG_FALSE)
    elif isinstance(value, int):
        buf.append(TAG_INT)
        write_svarint(buf, value)
    elif isinstance(value, float):
        buf.append(TAG_FLOAT)
        buf += _FLOAT.pack(value)
    elif isinstance(value, str):
        buf.append(TAG_STR)
        write_str(buf, value)
    elif isinstance(value, (list, tuple)):
        buf.append(TAG_LIST)
        write_uvarint(buf, len(value))
        for item in value:
            write_value(buf, item)
    else:
        raise CodecError(
            f"unsupported property type {type(value).__name__!r}"
        )


def read_value(data: bytes, pos: int) -> tuple[object, int]:
    if pos >= len(data):
        raise CodecError("truncated value tag")
    tag = data[pos]
    pos += 1
    if tag == TAG_NONE:
        return None, pos
    if tag == TAG_TRUE:
        return True, pos
    if tag == TAG_FALSE:
        return False, pos
    if tag == TAG_INT:
        return read_svarint(data, pos)
    if tag == TAG_FLOAT:
        end = pos + 8
        if end > len(data):
            raise CodecError("truncated float")
        return _FLOAT.unpack_from(data, pos)[0], end
    if tag == TAG_STR:
        return read_str(data, pos)
    if tag == TAG_LIST:
        count, pos = read_uvarint(data, pos)
        if count > MAX_FIELD_BYTES:
            raise CodecError(f"list length {count} exceeds limit")
        items = []
        for _ in range(count):
            item, pos = read_value(data, pos)
            items.append(item)
        return items, pos
    raise CodecError(f"unknown value tag {tag}")


def write_props(buf: bytearray, props: dict[str, object]) -> None:
    """A property map: count, then (name, value) pairs in dict order."""
    write_uvarint(buf, len(props))
    for name, value in props.items():
        write_str(buf, name)
        write_value(buf, value)


def read_props(data: bytes, pos: int) -> tuple[dict[str, object], int]:
    count, pos = read_uvarint(data, pos)
    if count > MAX_FIELD_BYTES:
        raise CodecError(f"property count {count} exceeds limit")
    props: dict[str, object] = {}
    for _ in range(count):
        name, pos = read_str(data, pos)
        value, pos = read_value(data, pos)
        props[name] = value
    return props, pos
