"""Offline integrity audit of a store directory (``repro verify``).

:func:`verify_directory` walks every snapshot generation and WAL in a
data directory, validates checksums and framing *without mutating
anything*, and returns a JSON-serializable report.  It is the
read-only counterpart of recovery: where
:class:`~repro.graphdb.storage.recovery.RecoveryManager` repairs
(truncates torn tails, quarantines bad snapshots), ``verify`` only
inspects - safe to run against a directory another process owns.

Status vocabulary per artifact:

* snapshot: ``ok`` | ``corrupt`` (checksum/format failure) |
  ``io-error`` (could not read; distinct from corruption);
* WAL: ``ok`` | ``torn`` (valid prefix + torn tail - crash debris
  recovery would truncate) | ``corrupt-header`` (no applicable
  records) | ``generation-mismatch`` (log belongs to a different
  snapshot generation) | ``io-error``.

The report's ``ok`` flag is conservative: any status other than
``ok`` on any artifact - including a torn WAL tail - flips it, and the
CLI exits 1 so cron-style health checks catch degradation early.
Quarantined snapshots and orphaned ``*.tmp`` debris are listed for
operators but do not flip ``ok`` on their own: both are inert by
construction.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.graphdb.storage.recovery import (
    QUARANTINE_SUFFIX,
    RecoveryManager,
    is_store_artifact,
    snapshot_name,
    wal_name,
)
from repro.graphdb.storage.snapshot import (
    SnapshotError,
    SnapshotIOError,
    read_snapshot_with_generation,
)
from repro.graphdb.storage.wal import WalError, WalIOError, read_wal


def _verify_snapshot(path: Path) -> dict:
    entry: dict = {"path": path.name}
    try:
        graph, _gen = read_snapshot_with_generation(path)
    except SnapshotIOError as exc:
        entry["status"] = "io-error"
        entry["error"] = str(exc)
    except SnapshotError as exc:
        entry["status"] = "corrupt"
        entry["error"] = str(exc)
    else:
        entry["status"] = "ok"
        entry["vertices"] = graph.num_vertices
        entry["edges"] = graph.num_edges
    return entry


def _verify_wal(path: Path, generation: int) -> dict:
    entry: dict = {"path": path.name}
    try:
        scan = read_wal(path)
    except WalIOError as exc:
        entry["status"] = "io-error"
        entry["error"] = str(exc)
        return entry
    except WalError as exc:
        entry["status"] = "corrupt-header"
        entry["error"] = str(exc)
        return entry
    entry["records"] = len(scan.records)
    entry["torn_bytes"] = scan.torn_bytes
    if scan.generation != generation:
        entry["status"] = "generation-mismatch"
        entry["wal_generation"] = scan.generation
    elif scan.torn_bytes:
        entry["status"] = "torn"
    else:
        entry["status"] = "ok"
    return entry


def verify_directory(data_dir: str | Path) -> dict:
    """Validate every generation in ``data_dir``; returns the report.

    Raises :class:`FileNotFoundError` when ``data_dir`` is not a
    directory - the CLI maps that to a usage error (exit 2) rather
    than a corruption finding (exit 1).
    """
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        raise FileNotFoundError(f"no data directory at {data_dir}")
    manager = RecoveryManager(data_dir)
    generations = sorted(
        set(manager.snapshot_generations())
        | set(manager.wal_generations())
    )
    report: dict = {
        "data_dir": str(data_dir),
        "generations": [],
        "quarantined": [],
        "tmp": [],
        "foreign": [],
        "ok": True,
    }
    for generation in generations:
        entry: dict = {"generation": generation}
        snap_path = data_dir / snapshot_name(generation)
        if snap_path.exists():
            entry["snapshot"] = _verify_snapshot(snap_path)
        else:
            # A WAL with no snapshot of its generation: its records
            # apply to nothing and recovery ignores it.
            entry["snapshot"] = {
                "path": snap_path.name, "status": "missing",
            }
        wal_path = data_dir / wal_name(generation)
        if wal_path.exists():
            entry["wal"] = _verify_wal(wal_path, generation)
        else:
            # Snapshot-only generations are healthy: the WAL is
            # created on first open, not at checkpoint time.
            entry["wal"] = {"path": wal_path.name, "status": "missing"}
        entry["ok"] = (
            entry["snapshot"]["status"] in ("ok", "missing")
            and entry["wal"]["status"] in ("ok", "missing")
        )
        if not entry["ok"]:
            report["ok"] = False
        report["generations"].append(entry)
    for name in sorted(os.listdir(data_dir)):
        if name.endswith(QUARANTINE_SUFFIX) and is_store_artifact(name):
            report["quarantined"].append(name)
        elif name.endswith(".tmp") and is_store_artifact(name):
            report["tmp"].append(name)
        elif not is_store_artifact(name):
            report["foreign"].append(name)
    return report
