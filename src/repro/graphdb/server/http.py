"""Minimal HTTP sidecar: ``/health`` and ``/metrics``.

A deliberately tiny HTTP/1.0-style responder on asyncio streams - just
enough for a probe or a Prometheus scrape, with ``Connection: close``
semantics (one request per socket).  It shares the event loop with the
wire-protocol listener, so what it reports is always coherent with
what the server is doing.
"""

from __future__ import annotations

import json

from repro.graphdb import observe

_MAX_HEADER_BYTES = 16384


async def handle_http_client(server, reader, writer) -> None:
    """Serve one HTTP request on ``reader``/``writer`` and close."""
    try:
        request_line = await reader.readline()
        total = len(request_line)
        # Drain headers (ignored) up to a sanity bound.
        while True:
            line = await reader.readline()
            total += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            if total > _MAX_HEADER_BYTES:
                writer.close()
                return
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            writer.close()
            return
        method, path = parts[0], parts[1]
        if method != "GET":
            _respond(writer, 405, "text/plain", b"method not allowed\n")
        elif path == "/health":
            _respond(
                writer, 200, "application/json",
                json.dumps(_health(server)).encode() + b"\n",
            )
        elif path == "/metrics":
            _respond(
                writer,
                200,
                "text/plain; version=0.0.4",
                observe.render_prometheus().encode(),
            )
        else:
            _respond(writer, 404, "text/plain", b"not found\n")
        await writer.drain()
    except (ConnectionError, OSError):
        pass
    finally:
        writer.close()


def _health(server) -> dict:
    graph = server.database.graph
    return {
        "status": "ok",
        "readonly": server.readonly,
        "connections": server.connection_count,
        "generation": server.generation,
        "epoch": graph.mutation_epoch,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "commits": server.committer.commits,
        "commit_fsyncs": server.committer.flushes,
    }


_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}


def _respond(writer, status: int, content_type: str,
             body: bytes) -> None:
    head = (
        f"HTTP/1.0 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
