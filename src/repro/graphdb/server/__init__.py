"""Network layer: serve one graph database over TCP.

The server half (:class:`GraphServer`) speaks the length+CRC framed
binary protocol defined in :mod:`.protocol`; the client half lives in
:mod:`repro.graphdb.api.remote` and is reached through the familiar
entry point::

    from repro.graphdb import connect

    with connect("repro://127.0.0.1:7688") as db:
        with db.session() as session:
            for record in session.run("MATCH (d:Drug) RETURN d.name"):
                ...

See ``docs/SERVER.md`` for the wire format, the MVCC/epoch read
semantics, and the group-commit write path.
"""

from repro.graphdb.server.protocol import DEFAULT_PORT, PROTOCOL_VERSION
from repro.graphdb.server.server import (
    GraphServer,
    GroupCommitter,
    ServerConfig,
)

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "GraphServer",
    "GroupCommitter",
    "ServerConfig",
]
