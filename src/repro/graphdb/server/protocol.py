"""The ``repro`` wire protocol: framed binary messages, stdlib-only.

Framing reuses the ``RPGWAL01`` record idiom - every message travels
as one self-describing frame::

    frame:   length u32 LE | crc u32 LE (zlib.crc32 of payload) | payload
    payload: msg_type u8   | message-specific fields

Fields are built from the storage codec's primitives (uvarint, tagged
values, property maps - :mod:`repro.graphdb.storage.codec`), so the
protocol needs no third-party serializer and shares its compatibility
discipline: appending message types or meta keys is compatible,
renumbering is a version bump negotiated in HELLO.

Message catalog (client -> server)::

    HELLO    0x01  version uvarint | client-info props
    RUN      0x02  query str | params props | options props
    PULL     0x03  n uvarint
    DISCARD  0x04  (empty)
    GOODBYE  0x0F  (empty)
    BEGIN    0x10  (empty)
    COMMIT   0x11  (empty)
    ROLLBACK 0x12  (empty)
    MUTATE   0x13  op str | args wire-value list

and (server -> client)::

    SUCCESS  0x70  meta props
    RECORD   0x71  n uvarint | n wire values
    ERROR    0x7F  code str | message str

``RUN`` options: ``timeout`` (float seconds), ``max_rows`` (int),
``explain`` (1 = plan only, 2 = EXPLAIN ANALYZE).  ``MUTATE`` ops use
the WAL's mutation vocabulary (``add_vertex``, ``add_edge``,
``set_property``, ``remove_property``, ``remove_edge``,
``remove_vertex``, ``create_property_index``).

Wire values extend the codec's tagged values with three tags from the
reserved range, so result rows can carry graph entity references::

    0x40  vertex ref: uvarint vid   -> VertexBinding(vid)
    0x41  edge ref:   uvarint eid   -> EdgeBinding(eid)
    0x42  wire list:  uvarint n | n wire values
    0x43  wire map:   codec props   -> dict (MUTATE property payloads)

(The codec's own ``TAG_LIST`` still decodes - parameter maps use it -
but rows are encoded with wire lists so nested entity refs survive.)

``ERROR.code`` is the exception class name; the client maps it back
onto the driver hierarchy (:data:`ERROR_CLASSES`), so a remote
``QueryTimeoutError`` raises exactly like a local one.
"""

from __future__ import annotations

import struct
import zlib

from repro.exceptions import (
    GraphError,
    ParameterError,
    QueryError,
    QuerySyntaxError,
    QueryTimeoutError,
    ResourceLimitError,
    StorageError,
    TransactionError,
)
from repro.graphdb.query.executor import EdgeBinding, VertexBinding
from repro.graphdb.storage.codec import (
    CodecError,
    read_props,
    read_str,
    read_uvarint,
    read_value,
    write_props,
    write_str,
    write_uvarint,
    write_value,
)

#: Protocol revision carried in HELLO; the server refuses mismatches.
PROTOCOL_VERSION = 1

#: Default TCP port (one off Bolt's 7687, to coexist with a real Neo4j).
DEFAULT_PORT = 7688

_FRAME = struct.Struct("<II")
FRAME_HEADER_BYTES = _FRAME.size

#: A frame larger than this is a protocol violation, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Client -> server.
MSG_HELLO = 0x01
MSG_RUN = 0x02
MSG_PULL = 0x03
MSG_DISCARD = 0x04
MSG_GOODBYE = 0x0F
MSG_BEGIN = 0x10
MSG_COMMIT = 0x11
MSG_ROLLBACK = 0x12
MSG_MUTATE = 0x13

# Server -> client.
MSG_SUCCESS = 0x70
MSG_RECORD = 0x71
MSG_ERROR = 0x7F

MSG_NAMES = {
    MSG_HELLO: "hello",
    MSG_RUN: "run",
    MSG_PULL: "pull",
    MSG_DISCARD: "discard",
    MSG_GOODBYE: "goodbye",
    MSG_BEGIN: "begin",
    MSG_COMMIT: "commit",
    MSG_ROLLBACK: "rollback",
    MSG_MUTATE: "mutate",
    MSG_SUCCESS: "success",
    MSG_RECORD: "record",
    MSG_ERROR: "error",
}

# Wire value tags (alongside the codec's 0-6 range).
WIRE_VERTEX = 0x40
WIRE_EDGE = 0x41
WIRE_LIST = 0x42
WIRE_MAP = 0x43

#: Mutation ops a MUTATE message may carry, with their arities.
MUTATION_OPS = {
    "add_vertex": 2,          # labels (str list), props
    "add_edge": 4,            # src, dst, label, props
    "set_property": 3,        # vid, name, value
    "remove_property": 2,     # vid, name
    "remove_edge": 1,         # eid
    "remove_vertex": 1,       # vid
    "create_property_index": 2,  # label, prop
}

#: ERROR code -> driver exception class (client-side mapping).  Codes
#: outside the table degrade to :class:`GraphError`.
ERROR_CLASSES = {
    "GraphError": GraphError,
    "ParameterError": ParameterError,
    "ProtocolError": lambda msg: ProtocolError(msg),
    "QueryError": QueryError,
    "QuerySyntaxError": QuerySyntaxError,
    "QueryTimeoutError": QueryTimeoutError,
    "ResourceLimitError": ResourceLimitError,
    "StorageError": StorageError,
    "TransactionError": TransactionError,
}


class ProtocolError(GraphError):
    """Raised for malformed frames, bad CRCs, or out-of-order messages."""


def error_code(exc: BaseException) -> str:
    """The wire code for an exception: the nearest mapped class name."""
    for cls in type(exc).__mro__:
        if cls.__name__ in ERROR_CLASSES:
            return cls.__name__
    return "GraphError"


def exception_for(code: str, message: str) -> GraphError:
    """Rehydrate a wire ERROR into the driver exception hierarchy."""
    factory = ERROR_CLASSES.get(code, GraphError)
    return factory(message)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def pack_frame(payload: bytes) -> bytes:
    """One wire frame: length + CRC header, then the payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds limit"
        )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def frame_length(header: bytes) -> int:
    """Payload length promised by an 8-byte frame header."""
    length, _crc = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds limit")
    return length


def check_frame(header: bytes, payload: bytes) -> bytes:
    """Validate a received payload against its header CRC."""
    length, crc = _FRAME.unpack(header)
    if len(payload) != length:
        raise ProtocolError(
            f"frame payload is {len(payload)} bytes, header says {length}"
        )
    if zlib.crc32(payload) != crc:
        raise ProtocolError("frame checksum mismatch")
    return payload


# ----------------------------------------------------------------------
# Wire values (codec values + entity references)
# ----------------------------------------------------------------------
def write_wire_value(buf: bytearray, value: object) -> None:
    if isinstance(value, VertexBinding):
        buf.append(WIRE_VERTEX)
        write_uvarint(buf, value.vid)
    elif isinstance(value, EdgeBinding):
        buf.append(WIRE_EDGE)
        write_uvarint(buf, value.eid)
    elif isinstance(value, (list, tuple)):
        buf.append(WIRE_LIST)
        write_uvarint(buf, len(value))
        for item in value:
            write_wire_value(buf, item)
    elif isinstance(value, dict):
        buf.append(WIRE_MAP)
        write_props(buf, value)
    else:
        write_value(buf, value)


def read_wire_value(data: bytes, pos: int) -> tuple[object, int]:
    if pos >= len(data):
        raise CodecError("truncated wire value")
    tag = data[pos]
    if tag == WIRE_VERTEX:
        vid, pos = read_uvarint(data, pos + 1)
        return VertexBinding(vid), pos
    if tag == WIRE_EDGE:
        eid, pos = read_uvarint(data, pos + 1)
        return EdgeBinding(eid), pos
    if tag == WIRE_LIST:
        count, pos = read_uvarint(data, pos + 1)
        if count > MAX_FRAME_BYTES:
            raise CodecError(f"wire list length {count} exceeds limit")
        items = []
        for _ in range(count):
            item, pos = read_wire_value(data, pos)
            items.append(item)
        return items, pos
    if tag == WIRE_MAP:
        return read_props(data, pos + 1)
    return read_value(data, pos)


# ----------------------------------------------------------------------
# Message encoders
# ----------------------------------------------------------------------
def encode_hello(client: dict | None = None) -> bytes:
    buf = bytearray((MSG_HELLO,))
    write_uvarint(buf, PROTOCOL_VERSION)
    write_props(buf, client or {})
    return bytes(buf)


def encode_run(
    query: str,
    params: dict | None = None,
    options: dict | None = None,
) -> bytes:
    buf = bytearray((MSG_RUN,))
    write_str(buf, query)
    write_props(buf, params or {})
    write_props(buf, options or {})
    return bytes(buf)


def encode_pull(n: int) -> bytes:
    if n < 1:
        raise ProtocolError(f"PULL batch size must be positive, got {n}")
    buf = bytearray((MSG_PULL,))
    write_uvarint(buf, n)
    return bytes(buf)


def encode_mutate(op: str, args: tuple | list) -> bytes:
    if op not in MUTATION_OPS:
        raise ProtocolError(f"unsupported mutation op {op!r}")
    buf = bytearray((MSG_MUTATE,))
    write_str(buf, op)
    write_wire_value(buf, list(args))
    return bytes(buf)


def encode_success(meta: dict | None = None) -> bytes:
    buf = bytearray((MSG_SUCCESS,))
    write_props(buf, meta or {})
    return bytes(buf)


def encode_record(values: tuple | list) -> bytes:
    buf = bytearray((MSG_RECORD,))
    write_uvarint(buf, len(values))
    for value in values:
        write_wire_value(buf, value)
    return bytes(buf)


def encode_error(code: str, message: str) -> bytes:
    buf = bytearray((MSG_ERROR,))
    write_str(buf, code)
    write_str(buf, message)
    return bytes(buf)


def encode_simple(msg_type: int) -> bytes:
    """DISCARD / GOODBYE / BEGIN / COMMIT / ROLLBACK: the bare opcode."""
    return bytes((msg_type,))


# ----------------------------------------------------------------------
# Message decoder
# ----------------------------------------------------------------------
def decode_message(payload: bytes) -> tuple[int, dict]:
    """One payload -> ``(msg_type, fields)``.

    Raises :class:`ProtocolError` for unknown types or malformed
    bodies (codec errors are wrapped, so transport code has a single
    failure type).
    """
    if not payload:
        raise ProtocolError("empty message payload")
    msg_type = payload[0]
    pos = 1
    try:
        if msg_type == MSG_HELLO:
            version, pos = read_uvarint(payload, pos)
            client, pos = read_props(payload, pos)
            return msg_type, {"version": version, "client": client}
        if msg_type == MSG_RUN:
            query, pos = read_str(payload, pos)
            params, pos = read_props(payload, pos)
            options, pos = read_props(payload, pos)
            return msg_type, {
                "query": query, "params": params, "options": options,
            }
        if msg_type == MSG_PULL:
            n, pos = read_uvarint(payload, pos)
            return msg_type, {"n": n}
        if msg_type == MSG_MUTATE:
            op, pos = read_str(payload, pos)
            args, pos = read_wire_value(payload, pos)
            if op not in MUTATION_OPS:
                raise ProtocolError(f"unsupported mutation op {op!r}")
            if (
                not isinstance(args, list)
                or len(args) != MUTATION_OPS[op]
            ):
                raise ProtocolError(
                    f"mutation {op!r} expects {MUTATION_OPS[op]} "
                    "arguments"
                )
            return msg_type, {"op": op, "args": args}
        if msg_type == MSG_SUCCESS:
            meta, pos = read_props(payload, pos)
            return msg_type, {"meta": meta}
        if msg_type == MSG_RECORD:
            count, pos = read_uvarint(payload, pos)
            if count > MAX_FRAME_BYTES:
                raise ProtocolError(f"record width {count} exceeds limit")
            values = []
            for _ in range(count):
                value, pos = read_wire_value(payload, pos)
                values.append(value)
            return msg_type, {"values": tuple(values)}
        if msg_type == MSG_ERROR:
            code, pos = read_str(payload, pos)
            message, pos = read_str(payload, pos)
            return msg_type, {"code": code, "message": message}
        if msg_type in (
            MSG_DISCARD, MSG_GOODBYE, MSG_BEGIN, MSG_COMMIT, MSG_ROLLBACK
        ):
            return msg_type, {}
    except CodecError as exc:
        raise ProtocolError(
            f"malformed {MSG_NAMES.get(msg_type, hex(msg_type))} "
            f"message: {exc}"
        ) from exc
    raise ProtocolError(f"unknown message type 0x{msg_type:02x}")
