"""Asyncio graph server: many readers, one group-committing writer.

:class:`GraphServer` exposes one :class:`~repro.graphdb.api.database.
Database` over TCP, speaking the framed protocol in
:mod:`repro.graphdb.server.protocol`.  The concurrency model matches
the engine underneath:

* **Readers are epoch-pinned (MVCC-style).**  A ``RUN`` executes on
  the event loop without yielding, pinned to the graph's mutation
  epoch at that instant, and buffers its rows server-side; ``PULL``
  then streams the buffer in client-paced batches.  Every row of a
  result therefore comes from exactly one epoch, no matter how many
  writes commit while the client is still pulling - the buffer *is*
  the snapshot.  Readers never take a lock and never block each
  other.

* **Writes serialize through the writer gate.**  ``BEGIN`` acquires
  the server's single writer slot (the engine supports one open
  transaction); ``MUTATE`` applies through the graph's undo log and
  WAL listeners; ``COMMIT`` commits in memory, releases the gate, and
  then *awaits group commit*: concurrent commits that queued while an
  fsync was in flight are made durable by one shared fsync
  (:meth:`~repro.graphdb.storage.store.GraphStore.sync_group`), and
  their acknowledgements resolve together.  The fsync runs in an
  executor thread, so readers keep executing while the disk syncs.

* **Reads drain past open transactions.**  A ``RUN`` from a
  connection that does not own the writer gate waits until no
  transaction is open, so uncommitted state is never visible to other
  sessions (the owner itself reads its own writes, like any
  same-connection read).

Backpressure is layered: past ``max_connections`` new sockets are
refused with an ERROR frame before handshake; per-connection response
streaming awaits ``drain()``, so a slow consumer pauses its own
result stream without occupying the loop; and each connection is
served strictly request-by-request, so a client cannot pipeline the
server into unbounded buffering.  Idle connections are reaped after
``idle_timeout``; per-query budgets clamp onto the driver's
:class:`~repro.graphdb.query.executor.ExecutionGuard` (server-side
``query_timeout`` / ``max_rows`` bound whatever the client asks for).

``server.accept`` / ``server.read`` / ``server.write`` failpoints
fire at the corresponding I/O boundaries; an injected
:class:`~repro.graphdb.faults.SimulatedCrash` takes the whole server
down *without* flushing the WAL - exactly like ``kill -9`` - which is
what the kill-mid-commit torture tests exercise.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.exceptions import (
    GraphError,
    ReproError,
    StorageError,
    TransactionError,
)
from repro.graphdb import faults, observe
from repro.graphdb.server import protocol as wire
from repro.graphdb.server.http import handle_http_client

FP_ACCEPT = faults.REGISTRY.register("server.accept")
FP_READ = faults.REGISTRY.register("server.read")
FP_WRITE = faults.REGISTRY.register("server.write")

_CONNECTIONS = observe.REGISTRY.gauge(
    "repro_server_connections", "Currently open client connections."
)
_CONNECTIONS_TOTAL = observe.REGISTRY.counter(
    "repro_server_connections_total", "Client connections accepted."
)
_REJECTED = observe.REGISTRY.counter(
    "repro_server_rejected_total",
    "Connections refused at the capacity limit (or by a fault).",
)
_REQUESTS = observe.REGISTRY.labeled_counter(
    "repro_server_requests_total",
    "type",
    "Requests handled, by message type.",
)
_BYTES_READ = observe.REGISTRY.counter(
    "repro_server_bytes_read_total", "Frame bytes read from clients."
)
_BYTES_WRITTEN = observe.REGISTRY.counter(
    "repro_server_bytes_written_total", "Frame bytes written to clients."
)
_REQUEST_SECONDS = observe.REGISTRY.histogram(
    "repro_server_request_seconds",
    help="Request wall time, frame decoded to response written.",
)


@dataclass
class ServerConfig:
    """Tunables for one :class:`GraphServer`."""

    host: str = "127.0.0.1"
    port: int = wire.DEFAULT_PORT
    #: Port for the HTTP sidecar (``/health`` + ``/metrics``); ``None``
    #: disables it, 0 picks an ephemeral port.
    http_port: int | None = None
    readonly: bool = False
    max_connections: int = 64
    #: Seconds a connection may sit between frames before it is reaped.
    idle_timeout: float | None = None
    #: Server-side ceiling on per-query wall time; clamps client asks.
    query_timeout: float | None = None
    #: Server-side ceiling on rows a query may produce.
    max_rows: int | None = None
    #: Seconds the group committer lingers collecting more commits
    #: before fsyncing.  0 still batches whatever queued during the
    #: previous fsync; raising it trades commit latency for batch size.
    group_window: float = 0.0
    #: Upper bound on one PULL batch (protects the response buffer).
    pull_batch_limit: int = 65536


class GroupCommitter:
    """Batches concurrent COMMIT acknowledgements into shared fsyncs.

    Commits register a future and, if no flusher is pending, start
    one.  The flusher yields once (plus the configured window) so
    every commit that is already runnable can join the batch, then
    snapshots the waiter list, syncs the store once in an executor
    thread, and resolves the whole batch together.  Commits arriving
    mid-fsync start the next batch - the classic two-lane group
    commit, sized by whatever queued while the disk was busy.
    """

    def __init__(self, store, window: float = 0.0, on_crash=None):
        self._store = store
        self._window = window
        self._on_crash = on_crash
        self._waiters: list[asyncio.Future] = []
        self._task: asyncio.Task | None = None
        #: Commits acknowledged / fsyncs performed (for /health).
        self.commits = 0
        self.flushes = 0

    def commit(self) -> asyncio.Future:
        """Register one committed transaction; resolves when durable."""
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        if self._store is None:
            fut.set_result(None)  # in-memory database: nothing to sync
            return fut
        self._waiters.append(fut)
        if self._task is None:
            self._task = loop.create_task(self._flush_batch())
        return fut

    async def _flush_batch(self) -> None:
        loop = asyncio.get_running_loop()
        if self._window > 0:
            await asyncio.sleep(self._window)
        else:
            await asyncio.sleep(0)
        waiters, self._waiters = self._waiters, []
        # Reset *before* the blocking sync: commits landing while the
        # fsync is in flight must start the next batch, not miss it.
        self._task = None
        if not waiters:
            return
        try:
            await loop.run_in_executor(
                None, self._store.sync_group, len(waiters)
            )
        except Exception as exc:
            for fut in waiters:
                if not fut.done():
                    fut.set_exception(
                        StorageError(f"group commit failed: {exc}")
                    )
            return
        except BaseException as exc:
            # SimulatedCrash (or loop teardown): the process is dying
            # mid-fsync.  Fail the waiters and route the crash to the
            # server's fatal path (which abandons the store).
            for fut in waiters:
                if not fut.done():
                    fut.set_exception(
                        StorageError("server crashed during commit fsync")
                    )
            if self._on_crash is not None:
                self._on_crash(exc)
                return
            raise exc
        self.commits += len(waiters)
        self.flushes += 1
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)


class _ServerResult:
    """One executed query, buffered for PULL-paced streaming."""

    __slots__ = ("columns", "rows", "meta", "pos")

    def __init__(self, columns, rows, meta):
        self.columns = columns
        self.rows = rows
        self.meta = meta
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.rows) - self.pos


class _ClientConnection:
    """One client socket's session, request loop, and tx state."""

    def __init__(self, server: "GraphServer", reader, writer):
        self._server = server
        self._reader = reader
        self._writer = writer
        self._session = server.database.session()
        self._result: _ServerResult | None = None
        self._in_tx = False
        self._ready = False  # becomes True after HELLO

    # -- transport -----------------------------------------------------
    async def _read_frame(self) -> bytes:
        timeout = self._server.config.idle_timeout
        if timeout is not None:
            header = await asyncio.wait_for(
                self._reader.readexactly(wire.FRAME_HEADER_BYTES),
                timeout=timeout,
            )
        else:
            header = await self._reader.readexactly(
                wire.FRAME_HEADER_BYTES
            )
        faults.fire(FP_READ)
        payload = await self._reader.readexactly(
            wire.frame_length(header)
        )
        _BYTES_READ.inc(len(header) + len(payload))
        return wire.check_frame(header, payload)

    async def _send(self, payload: bytes) -> None:
        faults.fire(FP_WRITE)
        frame = wire.pack_frame(payload)
        self._writer.write(frame)
        _BYTES_WRITTEN.inc(len(frame))
        # Flow control: a slow consumer stalls its own stream here
        # instead of growing the transport buffer without bound.
        await self._writer.drain()

    async def _send_error(self, exc: BaseException) -> None:
        await self._send(
            wire.encode_error(wire.error_code(exc), str(exc))
        )

    # -- request loop --------------------------------------------------
    async def serve(self) -> None:
        try:
            while True:
                try:
                    payload = await self._read_frame()
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionError,
                    OSError,
                ):
                    return  # disconnect or idle reap
                started = time.perf_counter()
                try:
                    msg_type, fields = wire.decode_message(payload)
                except wire.ProtocolError as exc:
                    await self._send_error(exc)
                    return
                _REQUESTS.inc(wire.MSG_NAMES[msg_type])
                if msg_type == wire.MSG_GOODBYE:
                    return
                try:
                    await self._dispatch(msg_type, fields)
                except ReproError as exc:
                    # Driver-level failure: the connection survives.
                    try:
                        await self._send_error(exc)
                    except (ConnectionError, OSError):
                        return
                except (ConnectionError, OSError):
                    return
                finally:
                    _REQUEST_SECONDS.observe(
                        time.perf_counter() - started
                    )
        except faults.SimulatedCrash as exc:
            self._server.crash(exc)
        finally:
            self._cleanup()

    async def _dispatch(self, msg_type: int, fields: dict) -> None:
        if msg_type == wire.MSG_HELLO:
            await self._handle_hello(fields)
            return
        if not self._ready:
            raise wire.ProtocolError("expected HELLO first")
        if msg_type == wire.MSG_RUN:
            await self._handle_run(**fields)
        elif msg_type == wire.MSG_PULL:
            await self._handle_pull(fields["n"])
        elif msg_type == wire.MSG_DISCARD:
            await self._handle_discard()
        elif msg_type == wire.MSG_BEGIN:
            await self._handle_begin()
        elif msg_type == wire.MSG_MUTATE:
            await self._handle_mutate(fields["op"], fields["args"])
        elif msg_type == wire.MSG_COMMIT:
            await self._handle_commit()
        elif msg_type == wire.MSG_ROLLBACK:
            await self._handle_rollback()
        else:
            raise wire.ProtocolError(
                f"unexpected message {wire.MSG_NAMES[msg_type]!r}"
            )

    # -- handshake -----------------------------------------------------
    async def _handle_hello(self, fields: dict) -> None:
        if self._ready:
            raise wire.ProtocolError("duplicate HELLO")
        if fields["version"] != wire.PROTOCOL_VERSION:
            await self._send_error(
                wire.ProtocolError(
                    f"protocol version {fields['version']} unsupported "
                    f"(server speaks {wire.PROTOCOL_VERSION})"
                )
            )
            raise ConnectionError("version mismatch")
        self._ready = True
        server = self._server
        graph = server.database.graph
        await self._send(wire.encode_success({
            "server": "repro",
            "protocol": wire.PROTOCOL_VERSION,
            "graph": graph.name,
            "readonly": server.readonly,
            "generation": server.generation,
            "epoch": graph.mutation_epoch,
        }))

    # -- queries -------------------------------------------------------
    async def _handle_run(
        self, query: str, params: dict, options: dict
    ) -> None:
        self._result = None  # an unfinished result is implicitly dropped
        server = self._server
        if not self._in_tx:
            # Drain past any open transaction: uncommitted state is
            # only visible to the connection that owns it.
            while server._tx_owner is not None:
                await server._tx_idle.wait()
        timeout = _clamp(
            options.get("timeout"), server.config.query_timeout
        )
        max_rows = _clamp(
            options.get("max_rows"), server.config.max_rows
        )
        explain = options.get("explain")
        if explain:
            text = self._session.explain(
                query, analyze=explain >= 2, parameters=params or None
            )
            await self._send(wire.encode_success({"plan": text}))
            return
        graph = server.database.graph
        # The epoch pin: execution happens synchronously on the loop
        # (no awaits below until the rows are buffered), so every row
        # belongs to this epoch by construction.
        epoch = graph.mutation_epoch
        started = time.perf_counter()
        result = self._session.run(
            query, params, timeout=timeout, max_rows=max_rows
        )
        rows = [tuple(record) for record in result]
        summary = result.consume()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        meta = {
            "rows": summary.rows,
            "epoch": epoch,
            "mode": summary.mode,
            "latency_ms": summary.latency_ms,
            "elapsed_ms": elapsed_ms,
            "plan_digest": summary.plan_digest,
        }
        self._result = _ServerResult(summary.columns, rows, meta)
        await self._send(wire.encode_success({
            "columns": summary.columns,
            "epoch": epoch,
            "mode": summary.mode,
        }))

    async def _handle_pull(self, n: int) -> None:
        result = self._result
        if result is None:
            raise wire.ProtocolError("PULL without an open result")
        n = min(n, self._server.config.pull_batch_limit)
        end = min(result.pos + n, len(result.rows))
        for i in range(result.pos, end):
            await self._send(wire.encode_record(result.rows[i]))
        result.pos = end
        if result.remaining:
            await self._send(wire.encode_success({"has_more": True}))
        else:
            self._result = None
            await self._send(wire.encode_success(
                {"has_more": False, **result.meta}
            ))

    async def _handle_discard(self) -> None:
        result = self._result
        if result is None:
            raise wire.ProtocolError("DISCARD without an open result")
        self._result = None
        await self._send(wire.encode_success(
            {"has_more": False, **result.meta}
        ))

    # -- transactions --------------------------------------------------
    async def _handle_begin(self) -> None:
        server = self._server
        if server.readonly:
            raise TransactionError(
                "server is read-only; writes are rejected"
            )
        if self._in_tx:
            raise TransactionError(
                "this connection already has an open transaction"
            )
        await server._acquire_writer(self)
        try:
            server.database.graph.begin_transaction()
        except BaseException:
            server._release_writer(self)
            raise
        self._in_tx = True
        await self._send(wire.encode_success({}))

    async def _handle_mutate(self, op: str, args: list) -> None:
        if not self._in_tx:
            raise TransactionError(
                f"mutation {op!r} outside a transaction (send BEGIN)"
            )
        graph = self._server.database.graph
        if op == "add_vertex":
            labels, props = args
            new_id = graph.add_vertex(labels, props or {})
        elif op == "add_edge":
            src, dst, label, props = args
            new_id = graph.add_edge(src, dst, label, props or {})
        else:
            getattr(graph, op)(*args)
            new_id = None
        meta = {} if new_id is None else {"id": new_id}
        await self._send(wire.encode_success(meta))

    async def _handle_commit(self) -> None:
        if not self._in_tx:
            raise TransactionError("COMMIT without an open transaction")
        server = self._server
        graph = server.database.graph
        graph.commit_transaction()
        self._in_tx = False
        # Release the gate *before* awaiting durability: the next
        # writer's mutations append behind this commit's records, and
        # its COMMIT joins the next fsync batch - that overlap is the
        # whole point of group commit.
        server._release_writer(self)
        await server.committer.commit()
        await self._send(wire.encode_success({}))

    async def _handle_rollback(self) -> None:
        if not self._in_tx:
            raise TransactionError(
                "ROLLBACK without an open transaction"
            )
        server = self._server
        server.database.graph.rollback_transaction()
        self._in_tx = False
        server._release_writer(self)
        await self._send(wire.encode_success({}))

    # -- teardown ------------------------------------------------------
    def _cleanup(self) -> None:
        if self._in_tx:
            # The client vanished mid-transaction: its uncommitted
            # work is discarded, exactly like a driver disconnect.
            try:
                self._server.database.graph.rollback_transaction()
            except ReproError:  # pragma: no cover - defensive
                pass
            self._in_tx = False
            self._server._release_writer(self)
        self._result = None
        try:
            self._session.close()
        except ReproError:  # pragma: no cover - defensive
            pass
        self._writer.close()


def _clamp(requested, ceiling):
    """The tighter of a client ask and a server ceiling (None-aware)."""
    if requested is None:
        return ceiling
    if ceiling is None:
        return requested
    return min(requested, ceiling)


class GraphServer:
    """One database served over the wire protocol (plus HTTP sidecar)."""

    def __init__(self, database, config: ServerConfig | None = None):
        self.database = database
        self.config = config or ServerConfig()
        self.readonly = self.config.readonly or getattr(
            database, "readonly", False
        )
        self.committer = GroupCommitter(
            None if self.readonly else database.store,
            window=self.config.group_window,
            on_crash=self.crash,
        )
        self.address: tuple[str, int] | None = None
        self.http_address: tuple[str, int] | None = None
        self._connections: set[_ClientConnection] = set()
        self._tcp_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._fatal: BaseException | None = None
        self._tx_owner: _ClientConnection | None = None
        self._tx_lock: asyncio.Lock | None = None
        self._tx_idle: asyncio.Event | None = None

    @property
    def generation(self) -> int:
        store = self.database.store
        return store.generation if store is not None else 0

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener(s); returns once accepting."""
        config = self.config
        self._stop_event = asyncio.Event()
        self._tx_lock = asyncio.Lock()
        self._tx_idle = asyncio.Event()
        self._tx_idle.set()
        self._tcp_server = await asyncio.start_server(
            self._accept, config.host, config.port
        )
        self.address = self._tcp_server.sockets[0].getsockname()[:2]
        if config.http_port is not None:
            self._http_server = await asyncio.start_server(
                lambda r, w: handle_http_client(self, r, w),
                config.host,
                config.http_port,
            )
            self.http_address = (
                self._http_server.sockets[0].getsockname()[:2]
            )
        observe.EVENTS.emit(
            "server_started",
            address=list(self.address),
            readonly=self.readonly,
            max_connections=config.max_connections,
        )

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop`; re-raises a fatal crash."""
        assert self._stop_event is not None, "call start() first"
        await self._stop_event.wait()
        await self._shutdown()
        if self._fatal is not None:
            raise self._fatal

    def request_stop(self) -> None:
        """Ask the server to shut down cleanly (threadsafe via
        ``loop.call_soon_threadsafe``)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def crash(self, exc: BaseException) -> None:
        """Fatal path: go down *without* flushing, like ``kill -9``."""
        if self._fatal is None:
            self._fatal = exc
        if self._stop_event is not None:
            self._stop_event.set()

    async def _shutdown(self) -> None:
        for server in (self._tcp_server, self._http_server):
            if server is not None:
                server.close()
        for conn in list(self._connections):
            conn._writer.close()
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        if self._http_server is not None:
            await self._http_server.wait_closed()
        store = self.database.store
        if self._fatal is not None:
            # Crash semantics: abandon the store so nothing buffered
            # gets flushed on the way out (recovery re-validates).
            if store is not None:
                store.abandon()
        else:
            self.database.close()
        observe.EVENTS.emit(
            "server_stopped", crashed=self._fatal is not None
        )

    # ------------------------------------------------------------------
    # Writer gate
    # ------------------------------------------------------------------
    async def _acquire_writer(self, conn: _ClientConnection) -> None:
        await self._tx_lock.acquire()
        self._tx_owner = conn
        self._tx_idle.clear()

    def _release_writer(self, conn: _ClientConnection) -> None:
        if self._tx_owner is conn:
            self._tx_owner = None
            self._tx_idle.set()
            self._tx_lock.release()

    # ------------------------------------------------------------------
    # Accept path
    # ------------------------------------------------------------------
    async def _accept(self, reader, writer) -> None:
        try:
            faults.fire(FP_ACCEPT)
        except faults.SimulatedCrash as exc:
            self.crash(exc)
            writer.close()
            return
        except Exception:
            _REJECTED.inc()
            writer.close()
            return
        if len(self._connections) >= self.config.max_connections:
            # Backpressure at the front door: refuse loudly rather
            # than queueing reads we cannot serve.
            _REJECTED.inc()
            try:
                writer.write(wire.pack_frame(wire.encode_error(
                    "GraphError",
                    f"server at connection capacity "
                    f"({self.config.max_connections})",
                )))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        conn = _ClientConnection(self, reader, writer)
        self._connections.add(conn)
        _CONNECTIONS_TOTAL.inc()
        _CONNECTIONS.set(len(self._connections))
        try:
            await conn.serve()
        finally:
            self._connections.discard(conn)
            _CONNECTIONS.set(len(self._connections))
