"""Shared dataset plumbing for the MED and FIN reproductions."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.generator import generate_logical
from repro.data.logical import LogicalDataset
from repro.exceptions import DataGenerationError
from repro.ontology.model import Ontology, RelationshipType
from repro.ontology.stats import DataStatistics, synthesize_statistics
from repro.ontology.workload import WorkloadSummary


@dataclass
class Dataset:
    """An ontology + statistics + the paper's benchmark queries."""

    name: str
    ontology: Ontology
    stats: DataStatistics
    #: query id (e.g. "Q1") -> Cypher text against the DIR schema
    queries: dict[str, str] = field(default_factory=dict)
    base_cardinality: int = 100
    seed: int = 7

    def workload(self, kind: str = "uniform") -> WorkloadSummary:
        if kind == "uniform":
            return WorkloadSummary.uniform(self.ontology)
        if kind == "zipf":
            return WorkloadSummary.zipf(self.ontology)
        raise DataGenerationError(f"unknown workload kind {kind!r}")

    def query_workload(self, boost: float = 4.0) -> WorkloadSummary:
        """A workload summary biased toward the benchmark queries.

        Concepts referenced by the microbenchmark queries get ``boost``
        times the base weight - this stands in for the paper's observed
        "workload summaries" input.
        """
        weights = {c: 1.0 for c in self.ontology.concepts}
        for text in self.queries.values():
            for concept in self.ontology.concepts:
                if f":{concept}" in text:
                    weights[concept] += boost
        return WorkloadSummary(
            weights, total_queries=1000, name="query-driven"
        )

    def logical(self, scale: float = 1.0, seed: int | None = None) -> LogicalDataset:
        stats = self.stats if scale == 1.0 else self.stats.scaled(scale)
        return generate_logical(
            self.ontology, stats, seed=self.seed if seed is None else seed
        )


def fill_relationships(
    ontology: Ontology,
    rel_type: RelationshipType,
    count: int,
    seed: int,
    label_prefix: str,
    allowed_parents: list[str] | None = None,
    allowed_children: list[str] | None = None,
) -> int:
    """Deterministically add ``count`` filler relationships.

    For inheritance, ``allowed_parents``/``allowed_children`` restrict
    the endpoints (the FIN ontology's 69 inheritance relationships
    concentrate on a few abstract concepts) and cycles are rejected.
    Returns the number of relationships actually added (always
    ``count`` unless the space of candidate pairs is exhausted).
    """
    rng = random.Random(seed)
    concepts = list(ontology.concepts)
    existing = {
        (r.rel_type, r.src, r.dst) for r in ontology.iter_relationships()
    }
    added = 0
    attempts = 0
    max_attempts = 200 * count + 1000
    while added < count and attempts < max_attempts:
        attempts += 1
        if rel_type is RelationshipType.INHERITANCE and allowed_parents:
            src = rng.choice(allowed_parents)
        else:
            src = rng.choice(concepts)
        if rel_type is RelationshipType.INHERITANCE and allowed_children:
            dst = rng.choice(allowed_children)
        else:
            dst = rng.choice(concepts)
        if src == dst:
            continue
        if (rel_type, src, dst) in existing:
            continue
        if rel_type is RelationshipType.INHERITANCE:
            if _creates_inheritance_cycle(ontology, src, dst):
                continue
            if dst in ontology.union_concepts():
                continue  # keep union concepts out of hierarchies
            label = "isA"
        else:
            label = f"{label_prefix}{added}"
        ontology.add_relationship(label, src, dst, rel_type)
        existing.add((rel_type, src, dst))
        added += 1
    if added < count:
        raise DataGenerationError(
            f"could only add {added}/{count} filler "
            f"{rel_type.value} relationships"
        )
    return added


def _creates_inheritance_cycle(
    ontology: Ontology, parent: str, child: str
) -> bool:
    """Would parent->child close an inheritance cycle?"""
    stack = [parent]
    seen: set[str] = set()
    while stack:
        node = stack.pop()
        if node == child:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(ontology.parents_of(node))
    return False


def derive_stats(
    ontology: Ontology, base_cardinality: int, seed: int
) -> DataStatistics:
    return synthesize_statistics(
        ontology, base_cardinality=base_cardinality, seed=seed
    )
