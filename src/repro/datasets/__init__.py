"""The MED and FIN evaluation datasets (Section 5.1 of the paper)."""

from repro.datasets.base import Dataset, fill_relationships
from repro.datasets.cache import (
    default_cache_dir,
    graph_cache_key,
    memoized_graph,
)
from repro.datasets.fin import (
    FIN_EXPECTED,
    FIN_QUERIES,
    build_fin,
    build_fin_ontology,
)
from repro.datasets.med import (
    MED_EXPECTED,
    MED_QUERIES,
    build_med,
    build_med_ontology,
)

__all__ = [
    "Dataset",
    "FIN_EXPECTED",
    "FIN_QUERIES",
    "MED_EXPECTED",
    "MED_QUERIES",
    "build_fin",
    "build_fin_ontology",
    "build_med",
    "build_med_ontology",
    "default_cache_dir",
    "fill_relationships",
    "graph_cache_key",
    "memoized_graph",
]
