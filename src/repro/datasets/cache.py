"""Snapshot memoization for generated benchmark graphs.

Generating the MED/FIN property graphs (synthetic logical data plus
the DIR/OPT loaders) costs hundreds of milliseconds per run and is
repeated by every CLI demo, benchmark, and test session.  This module
memoizes the finished :class:`~repro.graphdb.graph.PropertyGraph` as a
binary snapshot (:mod:`repro.graphdb.storage.snapshot`), so repeated
runs load in milliseconds instead of regenerating.  The snapshot's
columnar sections decode straight into the graph's typed property
columns, and a cache hit arrives unfrozen - callers that are done
mutating (e.g. ``build_pipeline``) freeze the graph themselves to get
the CSR read view.

Cache keys cover every generation *input*: dataset name, seed, base
cardinality, scale, the optimizer's budget fraction and Jaccard
thresholds (for OPT graphs), the snapshot format version, and the
library version (so a release invalidates old entries).  They cannot
see uncommitted changes to the generator/loader/optimizer code
itself - when hacking on those, point ``REPRO_SNAPSHOT_CACHE``
somewhere fresh or wipe the directory.  A corrupt or unreadable cache
entry is silently rebuilt - the cache is an accelerator, never a
source of truth.

The default cache directory comes from ``REPRO_SNAPSHOT_CACHE``; when
the variable is unset, callers must pass ``cache_dir`` explicitly
(``None`` disables memoization entirely).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from repro import __version__
from repro.graphdb.api import connect
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage.snapshot import (
    FORMAT_VERSION,
    SnapshotError,
    write_snapshot,
)

#: Environment variable naming the default snapshot cache directory.
CACHE_ENV = "REPRO_SNAPSHOT_CACHE"


def default_cache_dir() -> Path | None:
    """The cache directory from ``REPRO_SNAPSHOT_CACHE``, if set."""
    value = os.environ.get(CACHE_ENV)
    return Path(value) if value else None


def resolve_cache_dir(cache_dir: str | Path | None) -> Path | None:
    if cache_dir is not None:
        return Path(cache_dir)
    return default_cache_dir()


def graph_cache_key(
    dataset,
    kind: str,
    scale: float,
    budget_fraction: float | None = None,
    thresholds=None,
) -> str:
    """A filename-safe key covering every generation input."""
    parts = [
        dataset.name.lower(),
        kind,
        f"s{scale:g}",
        f"c{dataset.base_cardinality}",
        f"seed{dataset.seed}",
        f"fmt{FORMAT_VERSION}",
        f"v{__version__}",
    ]
    if budget_fraction is not None:
        parts.append(f"b{budget_fraction:g}")
    if thresholds is not None:
        parts.append(f"t{thresholds.theta1:g}-{thresholds.theta2:g}")
    return "-".join(parts)


def memoized_graph(
    key: str,
    cache_dir: str | Path | None,
    build: Callable[[], PropertyGraph],
) -> PropertyGraph:
    """Load ``<cache_dir>/<key>.rpgs``, or build and persist it.

    With ``cache_dir=None`` (and no ``REPRO_SNAPSHOT_CACHE``) this is
    just ``build()``.
    """
    directory = resolve_cache_dir(cache_dir)
    if directory is None:
        return build()
    path = directory / f"{key}.rpgs"
    if path.exists():
        try:
            # connect() recognizes a .rpgs file and loads it as an
            # in-memory database; the bare graph is the cache value.
            return connect(path).graph
        except SnapshotError:
            pass  # stale/corrupt entry: rebuild below
    graph = build()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        write_snapshot(graph, path)
    except OSError:
        pass  # read-only cache location: serve the built graph anyway
    return graph
