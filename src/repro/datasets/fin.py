"""FIN: the financial knowledge-graph dataset.

The paper's FIN ontology (built from SEC and FDIC data) has 28 concepts,
96 properties and 138 relationships, of which it enumerates "4 union, 69
inheritance, and 30 one-to-many"; the remaining 35 are modeled here as
many-to-many relationships (the paper's FIN queries Q11/Q12 aggregate
across exactly such relationships).  Inheritance dominates - the
hierarchy concentrates on a few abstract concepts (AutonomousAgent,
Person, Organization, FinancialInstrument, ...), which is what makes the
paper's Figure 9 curves dip when expensive inheritance applications
exhaust the budget.

The named fragment (AutonomousAgent / Person / ContractParty /
Corporation / Contract / Security) matches the FIBO-flavoured concepts
the paper's queries Q3/Q4/Q7/Q8/Q11 reference; the remaining inheritance
relationships are deterministic filler over the same parent set.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, derive_stats, fill_relationships
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology, RelationshipType
from repro.ontology.validation import validate_ontology

#: The paper's published counts.
FIN_EXPECTED = {
    "concepts": 28,
    "properties": 96,
    "relationships": 138,
    "union": 4,
    "inheritance": 69,
    "one_to_many": 30,
    "many_to_many": 35,
}

#: Microbenchmark queries assigned to FIN in the paper's Figure 11.
FIN_QUERIES = {
    # Pattern matching (Q3, Q4)
    "Q3": (
        "MATCH (aa:AutonomousAgent)<-[r1:isA]-(p:Person)"
        "<-[r2:isA]-(cp:ContractParty) RETURN aa"
    ),
    "Q4": (
        "MATCH (c:Corporation)-[:issues]->(s:Security)-[:isA]->"
        "(fi:FinancialInstrument) RETURN c.hasLegalName, s.cusip"
    ),
    # Vertex property lookup (Q7, Q8)
    "Q7": "MATCH (n:Corporation) RETURN n.hasLegalName",
    "Q8": (
        "MATCH (o:Officer)-[r:isA]->(p:Person) "
        "RETURN o.title, p.hasName"
    ),
    # Aggregation (Q11, Q12)
    "Q11": (
        "MATCH p=(con:Contract)-[r:isManagedBy]->(corp:Corporation) "
        "RETURN size(collect(con.hasEffectiveDate)) "
        "AS numberOfEffectiveDates"
    ),
    "Q12": (
        "MATCH (inv:Investment)-[:investsIn]->(sec:Security) "
        "RETURN sec.cusip, size(collect(inv.hasAmount)) "
        "AS totalPositions"
    ),
}

#: Parents the filler inheritance relationships may use (keeps the
#: hierarchy depth bounded so twin cardinalities stay laptop-scale).
#: FinancialInstrument is deliberately excluded: Q4/Q12 rely on the
#: Security merge-up target surviving as a schema node.
_FILLER_PARENTS = [
    "AutonomousAgent", "Person", "Organization", "LegalEntity",
    "Transaction", "Report", "Contract", "FinancialMetric", "Account",
]

#: Children the filler inheritance relationships may use.  Restricted
#: to event/record concepts so that the query-critical components
#: (Person/Corporation and FinancialInstrument/Security hierarchies)
#: keep the hand-written shape: merge components stay small and the
#: Q11/Q12 list properties remain unambiguous (see the rewriter's
#: component-based ambiguity check).
_FILLER_CHILDREN = [
    "Account", "Transaction", "Payment", "FinancialMetric", "Report",
    "Filing", "Rating",
]

_HAND_WRITTEN_INHERITANCE = 19
_HAND_WRITTEN_ONE_TO_MANY = 12
_HAND_WRITTEN_MANY_TO_MANY = 8


def build_fin_ontology() -> Ontology:
    """Construct the FIN ontology with the published element counts."""
    builder = (
        OntologyBuilder("FIN")
        .concept("AutonomousAgent", agentId="STRING", legalAddress="STRING")
        .concept(
            "Person",
            agentId="STRING", legalAddress="STRING", hasName="STRING",
        )
        .concept(
            "Organization",
            agentId="STRING", legalAddress="STRING", orgName="STRING",
            foundedDate="DATE", sector="STRING",
        )
        .concept(
            "Corporation",
            orgName="STRING", foundedDate="DATE", sector="STRING",
            hasLegalName="STRING", ticker="STRING",
        )
        .concept(
            "LegalEntity",
            orgName="STRING", legalForm="STRING", jurisdiction="STRING",
        )
        .concept("ContractParty", role="STRING", partySince="DATE")
        .concept(
            "Contract",
            contractId="STRING", hasEffectiveDate="DATE", value="FLOAT",
            riskRating="STRING", governingLaw="STRING",
            counterpartyCount="INT", status="STRING",
        )
        .concept(
            "FinancialInstrument",
            instrumentId="STRING", issueDate="DATE", faceValue="FLOAT",
        )
        .concept(
            "Security",
            instrumentId="STRING", issueDate="DATE", faceValue="FLOAT",
            cusip="STRING",
        )
        .concept("Equity", cusip="STRING", votingRights="BOOL")
        .concept(
            "Bond", cusip="STRING", couponRate="FLOAT", maturity="DATE"
        )
        .concept(
            "Loan",
            instrumentId="STRING", issueDate="DATE", principal="FLOAT",
            rate="FLOAT",
        )
        .concept(
            "Account",
            accountId="STRING", balance="FLOAT", openedDate="DATE",
            iban="STRING", currencyCode="STRING",
        )
        .concept(
            "Transaction",
            txnId="STRING", amount="FLOAT", timestamp="DATE",
        )
        .concept(
            "Payment",
            txnId="STRING", amount="FLOAT", timestamp="DATE",
            method="STRING",
        )
        .concept(
            "FinancialMetric",
            metricName="STRING", metricValue="FLOAT", period="STRING",
            unit="STRING", source="STRING",
        )
        .concept(
            "Report", reportId="STRING", period="STRING", filedDate="DATE"
        )
        .concept(
            "Filing",
            reportId="STRING", period="STRING", filedDate="DATE",
            formType="STRING",
        )
        .concept(
            "Officer", hasName="STRING", title="STRING", since="DATE"
        )
        .concept("Director", hasName="STRING", boardSeat="STRING")
        .concept("Shareholder", hasName="STRING", sharesHeld="INT")
        .concept(
            "Investment",
            investmentId="STRING", hasAmount="FLOAT", investDate="DATE",
            strategy="STRING", horizon="STRING", riskBucket="STRING",
        )
        .concept(
            "Rating",
            ratingId="STRING", grade="STRING", outlook="STRING",
            agency="STRING", watchlist="BOOL", lastReview="DATE",
        )
        .concept(
            "Exchange",
            orgName="STRING", mic="STRING", country="STRING",
            timezone="STRING",
        )
        .concept("Lender", agentId="STRING", lendingCapacity="FLOAT")
        .concept("Borrower", agentId="STRING", creditScore="INT")
        .concept("CreditParticipant", participantClass="STRING")
        .concept("MarketEvent", eventCategory="STRING")
        # --- Inheritance: the named FIBO-flavoured core (19) ----------
        .inherits("AutonomousAgent", "Person", "Organization")
        .inherits(
            "Person",
            "ContractParty", "Officer", "Director", "Shareholder",
            "Borrower",
        )
        .inherits(
            "Organization",
            "Corporation", "LegalEntity", "Exchange", "ContractParty",
            "Lender",
        )
        .inherits("LegalEntity", "Corporation")
        .inherits("FinancialInstrument", "Security", "Loan")
        .inherits("Security", "Equity", "Bond")
        .inherits("Transaction", "Payment")
        .inherits("Report", "Filing")
        # --- Unions (4) -----------------------------------------------
        .union("CreditParticipant", "Lender", "Borrower")
        .union("MarketEvent", "Transaction", "Filing")
        # --- One-to-many: named core (12) ------------------------------
        .one_to_many("files", "Corporation", "Filing")
        .one_to_many("issues", "Corporation", "Security")
        .one_to_many("hasRating", "Corporation", "Rating")
        .one_to_many("hasMetric", "Report", "FinancialMetric")
        .one_to_many("hasParty", "Contract", "CreditParticipant")
        .one_to_many("hasAccount", "ContractParty", "Account")
        .one_to_many("makes", "Account", "Transaction")
        .one_to_many("receives", "Account", "Payment")
        .one_to_many("hasInvestment", "Shareholder", "Investment")
        .one_to_many("appointedBy", "Corporation", "Officer")
        .one_to_many("originates", "Lender", "Loan")
        .one_to_many("owes", "Borrower", "Loan")
        # --- Many-to-many: named core (8) ------------------------------
        .many_to_many("isManagedBy", "Contract", "Corporation")
        .many_to_many("investsIn", "Investment", "Security")
        .many_to_many("listedOn", "Security", "Exchange")
        .many_to_many("holds", "Shareholder", "Equity")
        .many_to_many("rates", "Rating", "Bond")
        .many_to_many("arbitratedBy", "Contract", "Rating")
        .many_to_many("reportsOn", "Filing", "FinancialMetric")
        .many_to_many("settles", "Payment", "Account")
    )
    ontology = builder.build()

    # Filler to reach the published counts (deterministic).
    fill_relationships(
        ontology,
        RelationshipType.INHERITANCE,
        FIN_EXPECTED["inheritance"] - _HAND_WRITTEN_INHERITANCE,
        seed=101,
        label_prefix="isA",
        allowed_parents=_FILLER_PARENTS,
        allowed_children=_FILLER_CHILDREN,
    )
    fill_relationships(
        ontology,
        RelationshipType.ONE_TO_MANY,
        FIN_EXPECTED["one_to_many"] - _HAND_WRITTEN_ONE_TO_MANY,
        seed=102,
        label_prefix="finRel",
    )
    fill_relationships(
        ontology,
        RelationshipType.MANY_TO_MANY,
        FIN_EXPECTED["many_to_many"] - _HAND_WRITTEN_MANY_TO_MANY,
        seed=103,
        label_prefix="finAssoc",
    )
    validate_ontology(ontology)
    return ontology


def build_fin(base_cardinality: int = 40, seed: int = 13) -> Dataset:
    """The FIN dataset at the given base scale.

    FIN's dense inheritance DAG multiplies twin instances, so the
    default base cardinality is smaller than MED's.
    """
    ontology = build_fin_ontology()
    stats = derive_stats(ontology, base_cardinality, seed)
    return Dataset(
        name="FIN",
        ontology=ontology,
        stats=stats,
        queries=dict(FIN_QUERIES),
        base_cardinality=base_cardinality,
        seed=seed,
    )
