"""MED: the medical knowledge-graph dataset.

The paper's MED ontology has 43 concepts, 78 properties and 58
relationships (11 inheritance, 5 one-to-one, 30 one-to-many, 12
many-to-many).  We reproduce those counts exactly and *additionally*
include the 2 union relationships of the paper's own Figure 2 medical
ontology (Risk = ContraIndication | BlackBoxWarning), which the paper's
MED microbenchmark query Q1 requires but its statistics table omits -
see DESIGN.md.  Total: 60 relationships.

The core of the ontology (Drug / Indication / DrugInteraction / Risk) is
Figure 2 verbatim; the remaining concepts model the surrounding clinical
domain so that every relationship type appears with realistic fan-outs.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, derive_stats
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology

#: The paper's published counts (plus the Figure 2 unions).
MED_EXPECTED = {
    "concepts": 43,
    "properties": 78,
    "inheritance": 11,
    "one_to_one": 5,
    "one_to_many": 30,
    "many_to_many": 12,
    "union": 2,
}

#: Microbenchmark queries assigned to MED in the paper's Figure 11.
MED_QUERIES = {
    # Pattern matching (Q1, Q2)
    "Q1": (
        "MATCH (d:Drug)-[p:cause]->(r:Risk)<-[p2:unionOf]-"
        "(ci:ContraIndication) RETURN d.name"
    ),
    "Q2": (
        "MATCH (d:Drug)-[:has]->(di:DrugInteraction)<-[:isA]-"
        "(dfi:DrugFoodInteraction) RETURN d.name, dfi.risk"
    ),
    # Vertex property lookup (Q5, Q6)
    "Q5": (
        "MATCH (dl:DrugLabInteraction)-[r:isA]->(di:DrugInteraction) "
        "RETURN di.summary"
    ),
    "Q6": (
        "MATCH (d:Drug)-[:treat]->(i:Indication) RETURN i.desc"
    ),
    # Aggregation (Q9, Q10)
    "Q9": (
        "MATCH (d:Drug)-[r:hasDrugRoute]->(dr:DrugRoute) "
        "RETURN dr.drugRouteId, size(collect(d.brand)) "
        "AS numberOfDrugBrands"
    ),
    "Q10": (
        "MATCH (p:Patient)-[:takes]->(d:Drug) "
        "RETURN p.patientId, count(d.name) AS numberOfDrugs"
    ),
}


def build_med_ontology() -> Ontology:
    """Construct the MED ontology with the published element counts."""
    builder = (
        OntologyBuilder("MED")
        # --- Figure 2 core -------------------------------------------
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .concept("Condition", name="STRING")
        .concept("DrugInteraction", summary="STRING")
        .concept("DrugFoodInteraction", risk="STRING")
        .concept("DrugLabInteraction", mechanism="STRING")
        .concept("Risk")
        .concept("ContraIndication", description="STRING")
        .concept("BlackBoxWarning", note="STRING", route="STRING")
        # --- Clinical surroundings -----------------------------------
        .concept("DrugRoute", drugRouteId="STRING", routeName="STRING")
        .concept("Patient", patientId="STRING", age="INT", gender="STRING")
        .concept("Disease", name="STRING", icdCode="STRING")
        .concept("Symptom", desc="STRING", severity="INT")
        .concept("Treatment", treatmentId="STRING", startDate="DATE")
        .concept("Procedure", procCode="STRING")
        .concept(
            "Prescription",
            rxId="STRING", dosageText="STRING", startDate="DATE",
        )
        .concept("SideEffect", desc="STRING", frequency="FLOAT")
        .concept(
            "Allergy",
            desc="STRING", frequency="FLOAT", allergen="STRING",
        )
        .concept("Manufacturer", name="STRING", country="STRING")
        .concept("ClinicalTrial", trialId="STRING", phase="INT")
        .concept("Study", studyId="STRING", cohortSize="INT")
        .concept(
            "Publication", pubId="STRING", title="STRING", year="INT"
        )
        .concept("Evidence", evidenceLevel="STRING")
        .concept("Gene", symbol="STRING")
        .concept("Protein", uniprotId="STRING")
        .concept("Pathway", name="STRING")
        .concept("LabTest", testCode="STRING", unit="STRING")
        .concept("Observation", value="FLOAT", unit="STRING")
        .concept(
            "Biomarker", markerId="STRING", value="FLOAT", unit="STRING"
        )
        .concept("Encounter", encounterId="STRING", date="DATE")
        .concept("Provider", providerId="STRING", specialty="STRING")
        .concept("Pharmacy", pharmacyId="STRING", address="STRING")
        .concept("Hospital", name="STRING", beds="INT")
        .concept("Department", name="STRING")
        .concept("Insurance", planId="STRING", payer="STRING")
        .concept("Claim", claimId="STRING", amount="FLOAT")
        .concept("Device", deviceId="STRING", model="STRING")
        .concept("Vaccine", vaccineId="STRING", doses="INT")
        .concept("Ingredient", name="STRING", casNumber="STRING")
        .concept("Formulation", form="STRING", strength="STRING")
        .concept("Guideline", guidelineId="STRING", org="STRING")
        .concept(
            "Dosage", amount="FLOAT", unit="STRING", frequency="STRING"
        )
        .concept("Author", name="STRING", affiliation="STRING")
        # --- Inheritance (11) ----------------------------------------
        .inherits("DrugInteraction", "DrugFoodInteraction",
                  "DrugLabInteraction")
        .inherits("Treatment", "Procedure", "Prescription")
        .inherits("Evidence", "ClinicalTrial", "Study", "Publication")
        .inherits("SideEffect", "Allergy")
        .inherits("Observation", "LabTest", "Biomarker")
        .inherits("Provider", "Pharmacy")
        # --- Union (2) ------------------------------------------------
        .union("Risk", "ContraIndication", "BlackBoxWarning")
        # --- One-to-one (5) -------------------------------------------
        .one_to_one("has", "Indication", "Condition")
        .one_to_one("insuredBy", "Patient", "Insurance")
        .one_to_one("billedAs", "Prescription", "Claim")
        .one_to_one("locatedIn", "Encounter", "Department")
        .one_to_one("deliveredBy", "Vaccine", "Device")
        # --- One-to-many (30) -----------------------------------------
        .one_to_many("treat", "Drug", "Indication")
        .one_to_many("has", "Drug", "DrugInteraction")
        .one_to_many("cause", "Drug", "Risk")
        .one_to_many("hasSideEffect", "Drug", "SideEffect")
        .one_to_many("prescribedAs", "Drug", "Prescription")
        .one_to_many("hasSymptom", "Disease", "Symptom")
        .one_to_many("hasTreatment", "Disease", "Treatment")
        .one_to_many("hasEncounter", "Patient", "Encounter")
        .one_to_many("hasClaim", "Patient", "Claim")
        .one_to_many("hasObservation", "Encounter", "Observation")
        .one_to_many("performedBy", "Encounter", "Provider")
        .one_to_many("hasDosage", "Prescription", "Dosage")
        .one_to_many("manufactures", "Manufacturer", "Drug")
        .one_to_many("publishes", "Study", "Publication")
        .one_to_many("hasAuthor", "Publication", "Author")
        .one_to_many("hasIngredient", "Drug", "Ingredient")
        .one_to_many("hasFormulation", "Drug", "Formulation")
        .one_to_many("basedOn", "Guideline", "Evidence")
        .one_to_many("hasLabTest", "Encounter", "LabTest")
        .one_to_many("covers", "Guideline", "Disease")
        .one_to_many("hasDevice", "Hospital", "Device")
        .one_to_many("hasDepartment", "Hospital", "Department")
        .one_to_many("employs", "Hospital", "Provider")
        .one_to_many("hasVaccine", "Manufacturer", "Vaccine")
        .one_to_many("contains", "Pathway", "Gene")
        .one_to_many("producesProtein", "Gene", "Protein")
        .one_to_many("hasBiomarker", "Disease", "Biomarker")
        .one_to_many("hasAllergy", "Patient", "Allergy")
        .one_to_many("hasGuideline", "Condition", "Guideline")
        .one_to_many("hasStudy", "ClinicalTrial", "Study")
        # --- Many-to-many (12) ----------------------------------------
        .many_to_many("hasDrugRoute", "Drug", "DrugRoute")
        .many_to_many("takes", "Patient", "Drug")
        .many_to_many("diagnosedWith", "Patient", "Disease")
        .many_to_many("participatesIn", "Patient", "ClinicalTrial")
        .many_to_many("targets", "Drug", "Gene")
        .many_to_many("interactsWith", "Protein", "Pathway")
        .many_to_many("treatedAt", "Patient", "Hospital")
        .many_to_many("coveredBy", "Drug", "Insurance")
        .many_to_many("attends", "Provider", "ClinicalTrial")
        .many_to_many("cites", "Publication", "Study")
        .many_to_many("indicatedFor", "Vaccine", "Disease")
        .many_to_many("relatedTo", "Symptom", "Condition")
    )
    return builder.build()


def build_med(base_cardinality: int = 120, seed: int = 11) -> Dataset:
    """The MED dataset at the given base scale."""
    ontology = build_med_ontology()
    stats = derive_stats(ontology, base_cardinality, seed)
    return Dataset(
        name="MED",
        ontology=ontology,
        stats=stats,
        queries=dict(MED_QUERIES),
        base_cardinality=base_cardinality,
        seed=seed,
    )
