"""Observed inputs: derive statistics and workloads from live artifacts.

The optimizer consumes *data statistics* and *workload summaries*
(Section 4.2).  The synthetic path fabricates them; this module closes
the loop for real deployments:

* :func:`statistics_from_logical` measures concept/relationship
  cardinalities off a loaded :class:`LogicalDataset`;
* :func:`statistics_from_graph` measures them off a DIR property graph
  (labels are concepts, edge labels + endpoint labels identify the
  relationships);
* :class:`WorkloadRecorder` accumulates per-concept access counts from
  executed queries and emits a
  :class:`~repro.ontology.workload.WorkloadSummary`.
"""

from __future__ import annotations

from repro.data.logical import LogicalDataset
from repro.exceptions import DataGenerationError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import Query
from repro.graphdb.query.parser import parse_query
from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary


def statistics_from_logical(logical: LogicalDataset) -> DataStatistics:
    """Exact cardinalities of a logical dataset."""
    stats = DataStatistics()
    for concept in logical.ontology.concepts:
        stats.concept_cardinality[concept] = len(
            logical.instances_of(concept)
        )
    for rel_id in logical.ontology.relationships:
        stats.relationship_cardinality[rel_id] = len(
            logical.links_of(rel_id)
        )
    return stats


def statistics_from_graph(
    graph: PropertyGraph, ontology: Ontology
) -> DataStatistics:
    """Measure cardinalities off a DIR property graph.

    Vertices must carry their concept as a label and edges the
    relationship label - exactly what
    :func:`~repro.data.loader.load_direct` produces.  Edge counts are
    attributed to relationships by (label, endpoint concepts); an edge
    that matches no ontology relationship raises, which catches graphs
    that do not actually conform to the direct mapping.
    """
    stats = DataStatistics()
    for concept in ontology.concepts:
        stats.concept_cardinality[concept] = graph.label_count(concept)
    for rel_id in ontology.relationships:
        stats.relationship_cardinality[rel_id] = 0
    for edge in graph.iter_edges():
        src_labels = graph.vertex(edge.src).labels
        dst_labels = graph.vertex(edge.dst).labels
        rel = None
        for src_label in src_labels:
            for dst_label in dst_labels:
                rel = ontology.find_relationship(
                    edge.label, src_label, dst_label
                )
                if rel is not None:
                    break
            if rel is not None:
                break
        if rel is None:
            raise DataGenerationError(
                f"edge {edge.label!r} between {sorted(src_labels)} and "
                f"{sorted(dst_labels)} matches no ontology relationship"
            )
        stats.relationship_cardinality[rel.rel_id] += 1
    return stats


class WorkloadRecorder:
    """Accumulates concept access counts from observed queries.

    Every node-pattern label that names an ontology concept counts as
    one access per query occurrence; the recorder then emits the
    normalized :class:`WorkloadSummary` the optimizers consume.
    """

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self.counts: dict[str, int] = {c: 0 for c in ontology.concepts}
        self.queries_seen = 0

    def record(self, query: Query | str) -> None:
        if isinstance(query, str):
            query = parse_query(query)
        self.queries_seen += 1
        for pattern in query.patterns:
            for node in pattern.nodes:
                for label in node.labels:
                    if label in self.counts:
                        self.counts[label] += 1

    def record_many(self, queries) -> None:
        for query in queries:
            self.record(query)

    def summary(self, smoothing: float = 1.0) -> WorkloadSummary:
        """The observed workload; ``smoothing`` avoids zero weights."""
        if self.queries_seen == 0:
            raise DataGenerationError(
                "no queries recorded; cannot build a workload summary"
            )
        weights = {
            concept: count + smoothing
            for concept, count in self.counts.items()
        }
        return WorkloadSummary(
            weights,
            total_queries=self.queries_seen,
            name="observed",
        )
