"""Logical instance data: the schema-independent ground truth.

A :class:`LogicalDataset` holds the *logical* instances of every concept,
their property values, and the instance-level links of every
relationship.  Both the direct (DIR) and the optimized (OPT) property
graphs are materialized from the same logical dataset, which is what
makes DIR-vs-OPT query results comparable.

Instances of *derived* concepts (inheritance parents and unions) are
"twins": each child/member instance has a corresponding parent/union
instance carrying the parent's/union's properties, linked by an
instance-level ``isA``/``unionOf`` edge - exactly the structure shown in
the paper's Figure 1(b), where ``di1`` (a DrugInteraction) sits between
``drug1`` and the ``dfi1``/``dli1`` vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataGenerationError
from repro.ontology.model import Ontology


@dataclass
class LogicalDataset:
    """Instances, property values, and instance-level links."""

    ontology: Ontology
    #: concept name -> ordered list of instance uids
    instances: dict[str, list[str]] = field(default_factory=dict)
    #: instance uid -> property values
    properties: dict[str, dict[str, object]] = field(default_factory=dict)
    #: relationship id -> list of (src uid, dst uid) pairs
    links: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    #: instance uid -> concept name (reverse index)
    concept_of: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_instance(
        self, concept: str, uid: str, props: dict[str, object]
    ) -> None:
        if uid in self.concept_of:
            raise DataGenerationError(f"duplicate instance uid {uid!r}")
        self.instances.setdefault(concept, []).append(uid)
        self.properties[uid] = props
        self.concept_of[uid] = concept

    def add_link(self, rel_id: str, src_uid: str, dst_uid: str) -> None:
        for uid in (src_uid, dst_uid):
            if uid not in self.concept_of:
                raise DataGenerationError(f"unknown instance {uid!r}")
        self.links.setdefault(rel_id, []).append((src_uid, dst_uid))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def instances_of(self, concept: str) -> list[str]:
        return self.instances.get(concept, [])

    def links_of(self, rel_id: str) -> list[tuple[str, str]]:
        return self.links.get(rel_id, [])

    @property
    def num_instances(self) -> int:
        return len(self.concept_of)

    @property
    def num_links(self) -> int:
        return sum(len(pairs) for pairs in self.links.values())

    def summary(self) -> str:
        return (
            f"LogicalDataset[{self.ontology.name}]: "
            f"{self.num_instances:,} instances, {self.num_links:,} links"
        )

    def validate(self) -> None:
        """Check referential integrity and endpoint concepts of links."""
        for rel_id, pairs in self.links.items():
            rel = self.ontology.relationship(rel_id)
            for src_uid, dst_uid in pairs:
                src_concept = self.concept_of.get(src_uid)
                dst_concept = self.concept_of.get(dst_uid)
                if src_concept != rel.src or dst_concept != rel.dst:
                    raise DataGenerationError(
                        f"link {rel_id} connects {src_concept!r} -> "
                        f"{dst_concept!r}, expected {rel.src!r} -> "
                        f"{rel.dst!r}"
                    )
