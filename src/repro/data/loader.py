"""Materialize property graphs from logical data.

* :func:`load_direct` builds the DIR baseline: one vertex per logical
  instance (twins included), one edge per link - the direct mapping of
  the ontology (paper Figure 1(b)).

* :func:`load_optimized` builds the OPT graph for a
  :class:`~repro.schema.mapping.SchemaMapping`:

  1. instances connected by a *collapsed* link (consumed ``isA`` /
     ``unionOf`` / 1:1 relationships) are merged into one vertex via
     union-find;
  2. each merged vertex carries the labels of every concept in its
     group plus the surviving schema-node label;
  3. links of collapsed relationships disappear; all other links become
     edges between group representatives;
  4. replicated list properties are attached to the owning side, one
     list element per link (matching COLLECT-over-matches semantics);
     empty lists are left absent so existence semantics match DIR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.logical import LogicalDataset
from repro.graphdb.graph import PropertyGraph
from repro.schema.mapping import SchemaMapping


@dataclass
class LoadRegistry:
    """Optional out-parameter of the loaders: instance -> vertex trace.

    :mod:`repro.data.updates` uses it to apply incremental updates to a
    materialized graph without reloading.
    """

    #: instance uid -> vertex id
    vertex_of: dict[str, int] = field(default_factory=dict)
    #: group root uid -> member uids (OPT graphs only)
    groups: dict[str, list[str]] = field(default_factory=dict)
    #: instance uid -> group root uid (OPT graphs only)
    root_of: dict[str, str] = field(default_factory=dict)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self, items) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for item in items:
            grouped.setdefault(self.find(item), []).append(item)
        return grouped


def load_direct(
    logical: LogicalDataset,
    name: str = "direct",
    registry: LoadRegistry | None = None,
) -> PropertyGraph:
    """The DIR property graph: direct mapping of the ontology."""
    graph = PropertyGraph(name)
    vertex_of: dict[str, int] = (
        registry.vertex_of if registry is not None else {}
    )
    for concept, uids in logical.instances.items():
        for uid in uids:
            vertex_of[uid] = graph.add_vertex(
                (concept,), logical.properties[uid]
            )
    for rel_id, pairs in logical.links.items():
        rel = logical.ontology.relationship(rel_id)
        for src_uid, dst_uid in pairs:
            src_vid, dst_vid = vertex_of[src_uid], vertex_of[dst_uid]
            if rel.rel_type.is_structural:
                # Instance-level isA/unionOf edges point child -> parent
                # and member -> union (Section 5.3's query patterns),
                # opposite to the ontology relationship's direction.
                src_vid, dst_vid = dst_vid, src_vid
            graph.add_edge(src_vid, dst_vid, rel.label)
    return graph


def load_optimized(
    logical: LogicalDataset,
    mapping: SchemaMapping,
    name: str = "optimized",
    registry: LoadRegistry | None = None,
) -> PropertyGraph:
    """The OPT property graph conforming to ``mapping``'s schema."""
    ontology = logical.ontology
    graph = PropertyGraph(name)

    # 1. Merge along collapsed links.
    uf = _UnionFind()
    for rel_id in mapping.collapsed:
        for src_uid, dst_uid in logical.links_of(rel_id):
            uf.union(src_uid, dst_uid)

    # 2. One vertex per group, labelled with group concepts + the
    #    surviving schema node.
    groups = uf.groups(logical.concept_of)
    vertex_of: dict[str, int] = (
        registry.vertex_of if registry is not None else {}
    )
    if registry is not None:
        registry.groups = groups
        registry.root_of = {
            uid: root for root, members in groups.items()
            for uid in members
        }
    for root, members in groups.items():
        concepts = {logical.concept_of[uid] for uid in members}
        labels = set(concepts)
        node_keys: set[str] | None = None
        for concept in concepts:
            resolved = set(mapping.resolve_concept(concept))
            node_keys = (
                resolved if node_keys is None else node_keys & resolved
            )
        if node_keys:
            labels |= node_keys
        properties: dict[str, object] = {}
        for uid in sorted(members):
            properties.update(logical.properties[uid])
        vid = graph.add_vertex(frozenset(labels), properties)
        for uid in members:
            vertex_of[uid] = vid

    # 3. Edges for surviving relationships.
    for rel_id, pairs in logical.links.items():
        if mapping.is_collapsed(rel_id):
            continue
        rel = ontology.relationship(rel_id)
        for src_uid, dst_uid in pairs:
            src_vid, dst_vid = vertex_of[src_uid], vertex_of[dst_uid]
            if rel.rel_type.is_structural:
                src_vid, dst_vid = dst_vid, src_vid  # child/member first
            graph.add_edge(src_vid, dst_vid, rel.label)

    # 4. Replicated list properties.  Entries are grouped by
    #    (relationship, direction, list name, source): several schema
    #    nodes may share one replication (a dissolved concept resolves
    #    to many nodes) and a merged vertex may carry more than one of
    #    those node labels - the links must be applied exactly once.
    #    Conversely, the owner-label check keeps entries apart when
    #    *different* relationships feed the same list name on
    #    different nodes.
    grouped: dict[tuple, dict] = {}
    for repl in mapping.replications:
        key = (
            repl.rel_id, repl.direction, repl.list_name,
            repl.source_concept, repl.source_property,
        )
        entry = grouped.setdefault(key, {"repl": repl, "owners": set()})
        entry["owners"].add(repl.owner_node)
    for entry in grouped.values():
        repl = entry["repl"]
        owners = entry["owners"]
        owner_is_src = repl.direction == "fwd"
        lists: dict[int, list[object]] = {}
        for src_uid, dst_uid in logical.links_of(repl.rel_id):
            owner_uid = src_uid if owner_is_src else dst_uid
            partner_uid = dst_uid if owner_is_src else src_uid
            owner_vid = vertex_of[owner_uid]
            if not owners & graph.vertex(owner_vid).labels:
                continue
            value = _group_property(
                logical, uf, groups, partner_uid,
                repl.source_concept, repl.source_property,
            )
            if value is None:
                continue
            lists.setdefault(owner_vid, []).append(value)
        for vid, values in lists.items():
            existing = graph.vertex(vid).properties.get(repl.list_name)
            if isinstance(existing, list):
                existing.extend(values)
            else:
                graph.set_property(vid, repl.list_name, values)
    return graph


def _group_property(
    logical: LogicalDataset,
    uf: _UnionFind,
    groups: dict[str, list[str]],
    uid: str,
    source_concept: str,
    prop: str,
) -> object:
    """Read ``source_concept.prop`` from the merged group of ``uid``.

    The value may live on a twin/partner merged into the same group
    (e.g. a union member's property read through the union twin).
    """
    direct = logical.properties[uid].get(prop)
    if direct is not None and logical.concept_of[uid] == source_concept:
        return direct
    fallback = None
    for other_uid in groups.get(uf.find(uid), ()):
        value = logical.properties[other_uid].get(prop)
        if value is None:
            continue
        if logical.concept_of[other_uid] == source_concept:
            return value
        fallback = value if fallback is None else fallback
    return fallback
