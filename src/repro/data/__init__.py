"""Logical instance data, generation, loading, observation, updates."""

from repro.data.generator import generate_logical
from repro.data.loader import LoadRegistry, load_direct, load_optimized
from repro.data.logical import LogicalDataset
from repro.data.observe import (
    WorkloadRecorder,
    statistics_from_graph,
    statistics_from_logical,
)
from repro.data.updates import GraphUpdater

__all__ = [
    "GraphUpdater",
    "LoadRegistry",
    "LogicalDataset",
    "WorkloadRecorder",
    "generate_logical",
    "load_direct",
    "load_optimized",
    "statistics_from_graph",
    "statistics_from_logical",
]
