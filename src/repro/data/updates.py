"""Incremental update handling (Section 4.2 of the paper).

*"Our approach can also handle updates (i.e., insert, delete, and
modify) to the property graph if they do not incur any schema
changes."*

:class:`GraphUpdater` applies instance-level updates to the logical
dataset and keeps the materialized DIR and OPT graphs consistent:

* **insert_instance** creates the vertex (plus, for concepts below a
  derived parent/union, the twin chain and its structural links - a
  new child instance *is* a new parent/union instance);
* **insert_link / delete_link** maintain edges and the replicated list
  properties the optimized schema carries;
* **set_property** updates the vertex and refreshes every list
  property replicated from it.

List properties are refreshed by recomputation from the logical links
(the single source of truth), which keeps the updater simple and
obviously correct; an entry-level delta would be the next optimization.
Statistics-changing update streams that would *invalidate* rule choices
are out of scope, as in the paper ("minimizing such transformation
overheads is left as future work").
"""

from __future__ import annotations

from repro.data.loader import LoadRegistry, _group_property
from repro.data.logical import LogicalDataset
from repro.exceptions import DataGenerationError
from repro.graphdb.graph import PropertyGraph
from repro.ontology.model import RelationshipType
from repro.schema.mapping import SchemaMapping


class GraphUpdater:
    """Keeps DIR and OPT graphs in sync with logical updates."""

    def __init__(
        self,
        logical: LogicalDataset,
        mapping: SchemaMapping,
        dir_graph: PropertyGraph,
        dir_registry: LoadRegistry,
        opt_graph: PropertyGraph,
        opt_registry: LoadRegistry,
    ):
        self.logical = logical
        self.mapping = mapping
        self.ontology = logical.ontology
        self.dir_graph = dir_graph
        self.dir_registry = dir_registry
        self.opt_graph = opt_graph
        self.opt_registry = opt_registry
        self._uid_counter = logical.num_instances
        #: structural links created by the in-flight insert_instance
        self._twin_links: dict[str, list[tuple[str, str]]] = {}

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def insert_instance(
        self, concept: str, props: dict[str, object]
    ) -> str:
        """Insert an instance; returns its uid.

        Derived concepts (union concepts / inheritance parents) cannot
        be inserted directly - their instances exist only as twins of
        member/child instances, matching the generator's data model.
        """
        if concept in self.ontology.derived_concepts():
            raise DataGenerationError(
                f"{concept!r} is a derived concept; insert a member or "
                f"child instance instead"
            )
        uid = self._fresh_uid(concept)
        self._twin_links = {}
        self.logical.add_instance(concept, uid, dict(props))
        group = [uid]
        group += self._create_twin_chain(concept, uid)

        # DIR: one vertex per instance + structural edges.
        for member_uid in group:
            member_concept = self.logical.concept_of[member_uid]
            self.dir_registry.vertex_of[member_uid] = (
                self.dir_graph.add_vertex(
                    (member_concept,),
                    self.logical.properties[member_uid],
                )
            )
        for rel_id, pairs in self._twin_links.items():
            rel = self.ontology.relationship(rel_id)
            for src_uid, dst_uid in pairs:
                src_vid = self.dir_registry.vertex_of[src_uid]
                dst_vid = self.dir_registry.vertex_of[dst_uid]
                # Structural instance edges point child/member first.
                self.dir_graph.add_edge(dst_vid, src_vid, rel.label)

        # OPT: one vertex per merge group.
        self._materialize_opt_groups(group)
        self._twin_links = {}
        return uid

    def insert_link(
        self, rel_id: str, src_uid: str, dst_uid: str
    ) -> None:
        """Insert a functional link and maintain edges + lists."""
        rel = self.ontology.relationship(rel_id)
        if not rel.rel_type.is_functional:
            raise DataGenerationError(
                "structural links are created by insert_instance"
            )
        self.logical.add_link(rel_id, src_uid, dst_uid)
        self.dir_graph.add_edge(
            self.dir_registry.vertex_of[src_uid],
            self.dir_registry.vertex_of[dst_uid],
            rel.label,
        )
        if not self.mapping.is_collapsed(rel_id):
            self.opt_graph.add_edge(
                self.opt_registry.vertex_of[src_uid],
                self.opt_registry.vertex_of[dst_uid],
                rel.label,
            )
        self._refresh_lists_for_rel(rel_id, {src_uid, dst_uid})

    def delete_link(
        self, rel_id: str, src_uid: str, dst_uid: str
    ) -> None:
        """Delete one functional link and maintain edges + lists."""
        rel = self.ontology.relationship(rel_id)
        pairs = self.logical.links.get(rel_id, [])
        try:
            pairs.remove((src_uid, dst_uid))
        except ValueError:
            raise DataGenerationError(
                f"no link {src_uid} -> {dst_uid} in {rel_id}"
            ) from None
        self._remove_one_edge(
            self.dir_graph,
            self.dir_registry.vertex_of[src_uid],
            self.dir_registry.vertex_of[dst_uid],
            rel.label,
        )
        if not self.mapping.is_collapsed(rel_id):
            self._remove_one_edge(
                self.opt_graph,
                self.opt_registry.vertex_of[src_uid],
                self.opt_registry.vertex_of[dst_uid],
                rel.label,
            )
        self._refresh_lists_for_rel(rel_id, {src_uid, dst_uid})

    def set_property(self, uid: str, name: str, value: object) -> None:
        """Modify a property and refresh every list replicated from it."""
        self.logical.properties[uid][name] = value
        self.dir_graph.set_property(
            self.dir_registry.vertex_of[uid], name, value
        )
        self.opt_graph.set_property(
            self.opt_registry.vertex_of[uid], name, value
        )
        concept = self.logical.concept_of[uid]
        for repl in self.mapping.replications:
            if (
                repl.source_concept == concept
                and repl.source_property == name
            ):
                self._refresh_lists_for_rel(repl.rel_id, {uid})

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fresh_uid(self, concept: str) -> str:
        self._uid_counter += 1
        return f"{concept}#u{self._uid_counter}"

    def _create_twin_chain(self, concept: str, uid: str) -> list[str]:
        """Twins for every derived ancestor, recursively."""
        created: list[str] = []
        ancestors = [
            rel for rel in self.ontology.in_edges(concept)
            if rel.rel_type in (
                RelationshipType.INHERITANCE, RelationshipType.UNION
            )
        ]
        for rel in ancestors:
            parent = rel.src
            twin_uid = f"{parent}|{uid}"
            if twin_uid not in self.logical.concept_of:
                self.logical.add_instance(parent, twin_uid, {})
                created.append(twin_uid)
                created += self._create_twin_chain(parent, twin_uid)
            self.logical.add_link(rel.rel_id, twin_uid, uid)
            self._twin_links.setdefault(rel.rel_id, []).append(
                (twin_uid, uid)
            )
        return created

    def _materialize_opt_groups(self, uids: list[str]) -> None:
        """Union-find the new instances along collapsed twin links and
        create one OPT vertex per resulting group."""
        parent = {uid: uid for uid in uids}

        def find(u: str) -> str:
            while parent[u] != u:
                parent[u] = parent[parent[u]]
                u = parent[u]
            return u

        for rel_id, pairs in self._twin_links.items():
            if not self.mapping.is_collapsed(rel_id):
                continue
            for src_uid, dst_uid in pairs:
                ra, rb = find(src_uid), find(dst_uid)
                if ra != rb:
                    parent[rb] = ra
        groups: dict[str, list[str]] = {}
        for uid in uids:
            groups.setdefault(find(uid), []).append(uid)
        for root, members in groups.items():
            concepts = {self.logical.concept_of[u] for u in members}
            labels = set(concepts)
            for key, node_concepts in self._merged_nodes().items():
                if node_concepts <= concepts:
                    labels.add(key)
            properties: dict[str, object] = {}
            for member in sorted(members):
                properties.update(self.logical.properties[member])
            vid = self.opt_graph.add_vertex(frozenset(labels), properties)
            for member in members:
                self.opt_registry.vertex_of[member] = vid
                self.opt_registry.root_of[member] = root
            self.opt_registry.groups[root] = list(members)
        # Non-collapsed structural links become OPT edges.
        for rel_id, pairs in self._twin_links.items():
            if self.mapping.is_collapsed(rel_id):
                continue
            rel = self.ontology.relationship(rel_id)
            for src_uid, dst_uid in pairs:
                self.opt_graph.add_edge(
                    self.opt_registry.vertex_of[dst_uid],
                    self.opt_registry.vertex_of[src_uid],
                    rel.label,
                )

    def _merged_nodes(self) -> dict[str, frozenset[str]]:
        merged = {}
        for key, labels in self.mapping.node_labels.items():
            concepts = frozenset(
                label for label in labels
                if label in self.ontology.concepts
            )
            if len(concepts) > 1 and key not in self.ontology.concepts:
                merged[key] = concepts
        return merged

    def _remove_one_edge(
        self, graph: PropertyGraph, src: int, dst: int, label: str
    ) -> None:
        for edge in graph.out_edges(src, label):
            if edge.dst == dst:
                graph.remove_edge(edge.eid)
                return
        raise DataGenerationError(
            f"no {label!r} edge {src} -> {dst} in {graph.name}"
        )

    def _refresh_lists_for_rel(
        self, rel_id: str, touched_uids: set[str]
    ) -> None:
        """Recompute list properties affected by changes around a rel."""
        registry = self.opt_registry

        class _UfView:
            def find(_, uid: str) -> str:
                return registry.root_of.get(uid, uid)

        uf_view = _UfView()
        for repl in self.mapping.replications:
            if repl.rel_id != rel_id:
                continue
            owner_is_src = repl.direction == "fwd"
            affected_owner_vids: set[int] = set()
            for src_uid, dst_uid in self.logical.links_of(rel_id):
                if not touched_uids & {src_uid, dst_uid}:
                    continue
                owner_uid = src_uid if owner_is_src else dst_uid
                affected_owner_vids.add(registry.vertex_of[owner_uid])
            # Also owners that may have LOST their last link.
            for uid in touched_uids:
                if uid in registry.vertex_of:
                    affected_owner_vids.add(registry.vertex_of[uid])
            for vid in affected_owner_vids:
                if repl.owner_node not in self.opt_graph.vertex(
                    vid
                ).labels:
                    continue
                values: list[object] = []
                for src_uid, dst_uid in self.logical.links_of(rel_id):
                    owner_uid = src_uid if owner_is_src else dst_uid
                    if registry.vertex_of.get(owner_uid) != vid:
                        continue
                    partner_uid = dst_uid if owner_is_src else src_uid
                    value = _group_property(
                        self.logical, uf_view, registry.groups,
                        partner_uid, repl.source_concept,
                        repl.source_property,
                    )
                    if value is not None:
                        values.append(value)
                if values:
                    self.opt_graph.set_property(
                        vid, repl.list_name, values
                    )
                else:
                    self.opt_graph.remove_property(vid, repl.list_name)
