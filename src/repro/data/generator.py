"""Synthetic instance-data generator.

Produces a :class:`~repro.data.logical.LogicalDataset` consistent with an
ontology and its :class:`~repro.ontology.stats.DataStatistics`:

* non-derived concepts get ``|c|`` base instances;
* every inheritance-parent instance is a *twin* of a child instance
  (one per (child instance, parent) pair), linked by an ``isA`` link;
* every union instance is a twin of a member instance (``unionOf`` link);
* functional links respect the relationship cardinalities (bijection for
  1:1, one source per destination for 1:M, ``|r|/|src|`` partners per
  source for M:N).

Property values are drawn from seeded pools so that groupings and
filters hit multiple instances; everything is deterministic given the
seed.
"""

from __future__ import annotations

import random

from repro.data.logical import LogicalDataset
from repro.exceptions import DataGenerationError
from repro.ontology.model import DataType, Ontology, RelationshipType
from repro.ontology.stats import DataStatistics


def generate_logical(
    ontology: Ontology,
    stats: DataStatistics,
    seed: int = 0,
) -> LogicalDataset:
    """Generate a logical dataset for ``ontology`` sized by ``stats``."""
    stats.validate_against(ontology)
    rng = random.Random(seed)
    dataset = LogicalDataset(ontology)
    _materialize_instances(ontology, stats, dataset, rng)
    _materialize_functional_links(ontology, stats, dataset, rng)
    return dataset


# ----------------------------------------------------------------------
# Instances (base + derived twins)
# ----------------------------------------------------------------------
def _materialize_instances(
    ontology: Ontology,
    stats: DataStatistics,
    dataset: LogicalDataset,
    rng: random.Random,
) -> None:
    derived = ontology.derived_concepts()
    for concept in ontology.concepts:
        if concept in derived:
            continue
        for i in range(stats.card(concept)):
            uid = f"{concept}#{i}"
            dataset.add_instance(
                concept, uid, _properties_for(ontology, concept, i, rng)
            )

    resolved: set[str] = set(ontology.concepts) - derived

    def resolve(concept: str, trail: tuple[str, ...] = ()) -> None:
        if concept in resolved:
            return
        if concept in trail:
            raise DataGenerationError(
                f"cyclic twin derivation at {concept!r}"
            )
        structural = [
            rel
            for rel in ontology.out_edges(concept)
            if rel.rel_type
            in (RelationshipType.INHERITANCE, RelationshipType.UNION)
        ]
        counter = 0
        for rel in structural:
            resolve(rel.dst, trail + (concept,))
            for part_uid in dataset.instances_of(rel.dst):
                twin_uid = f"{concept}|{part_uid}"
                if twin_uid not in dataset.concept_of:
                    # A concept can relate to the same child through
                    # several structural relationships (e.g. both
                    # unionOf and isA); the twin is shared.
                    dataset.add_instance(
                        concept,
                        twin_uid,
                        _properties_for(ontology, concept, counter, rng),
                    )
                    counter += 1
                # Instance-level structural link: parent/union twins are
                # the *source* side of the ontology relationship.
                dataset.add_link(rel.rel_id, twin_uid, part_uid)
        resolved.add(concept)

    for concept in sorted(derived):
        resolve(concept)


def _properties_for(
    ontology: Ontology, concept: str, index: int, rng: random.Random
) -> dict[str, object]:
    """Deterministic property values with controlled selectivity.

    Properties whose name suggests identity (``*id``, ``name``) get
    near-unique values; everything else draws from a small pool so that
    grouping queries produce multi-row groups.
    """
    props: dict[str, object] = {}
    for prop in ontology.concept(concept).properties.values():
        lowered = prop.name.lower()
        identity = lowered.endswith("id") or lowered == "name"
        pool = 1_000_000 if identity else 7
        token = index if identity else rng.randrange(pool)
        if prop.data_type is DataType.STRING:
            props[prop.name] = f"{concept[:4].lower()}_{prop.name}_{token}"
        elif prop.data_type is DataType.TEXT:
            props[prop.name] = (
                f"text about {concept} {prop.name} variant {token}"
            )
        elif prop.data_type is DataType.INT:
            props[prop.name] = int(token)
        elif prop.data_type is DataType.FLOAT:
            props[prop.name] = round(token * 1.5 + 0.25, 2)
        elif prop.data_type is DataType.DATE:
            props[prop.name] = f"2020-{(token % 12) + 1:02d}-{(token % 27) + 1:02d}"
        elif prop.data_type is DataType.BOOL:
            props[prop.name] = bool(token % 2)
    return props


# ----------------------------------------------------------------------
# Functional links
# ----------------------------------------------------------------------
def _materialize_functional_links(
    ontology: Ontology,
    stats: DataStatistics,
    dataset: LogicalDataset,
    rng: random.Random,
) -> None:
    for rel in ontology.iter_relationships():
        if not rel.rel_type.is_functional:
            continue
        src_pool = dataset.instances_of(rel.src)
        dst_pool = dataset.instances_of(rel.dst)
        if not src_pool or not dst_pool:
            raise DataGenerationError(
                f"relationship {rel.rel_id} has an empty endpoint"
            )
        if rel.rel_type is RelationshipType.ONE_TO_ONE:
            count = min(len(src_pool), len(dst_pool))
            shuffled = list(dst_pool)
            rng.shuffle(shuffled)
            for src_uid, dst_uid in zip(src_pool[:count], shuffled[:count]):
                dataset.add_link(rel.rel_id, src_uid, dst_uid)
        elif rel.rel_type is RelationshipType.ONE_TO_MANY:
            # Each "many"-side instance points back to one source.
            for dst_uid in dst_pool:
                dataset.add_link(
                    rel.rel_id, rng.choice(src_pool), dst_uid
                )
        else:  # MANY_TO_MANY
            total = stats.rel_card(rel.rel_id)
            fanout = max(1, round(total / len(src_pool)))
            for src_uid in src_pool:
                partners = rng.sample(
                    dst_pool, min(fanout, len(dst_pool))
                )
                for dst_uid in partners:
                    dataset.add_link(rel.rel_id, src_uid, dst_uid)
