"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class OntologyError(ReproError):
    """Raised when an ontology is malformed or an operation is invalid."""


class ValidationError(OntologyError):
    """Raised when ontology validation finds integrity violations."""


class SchemaError(ReproError):
    """Raised for invalid property-graph-schema operations."""


class OptimizationError(ReproError):
    """Raised when a schema optimization algorithm cannot proceed."""


class GraphError(ReproError):
    """Raised by the property-graph storage engine.

    Also the base of the public driver API's error hierarchy: callers
    of :mod:`repro.graphdb.api` can catch :class:`GraphError` to cover
    query, parameter, and transaction failures alike.
    """


class StorageError(ReproError):
    """Raised by the durable storage subsystem (snapshots, WAL, recovery)."""


class TransactionError(GraphError):
    """Raised for invalid transaction usage (nesting, closed handles)."""


class QueryError(GraphError):
    """Raised for malformed queries (lexing, parsing, or binding errors)."""


class QuerySyntaxError(QueryError):
    """Raised when query text cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ParameterError(QueryError):
    """Raised when query parameters are missing or unusable."""


class ResourceLimitError(GraphError):
    """Raised when a query exceeds a caller-imposed resource budget.

    The base of the guardrail hierarchy: ``session.run(..., max_rows=)``
    raises this directly when the row budget is exhausted, and
    :class:`QueryTimeoutError` specializes it for deadlines.  Catching
    ``ResourceLimitError`` covers both.
    """


class QueryTimeoutError(ResourceLimitError):
    """Raised when a query's wall-clock deadline expires mid-execution."""


class ParallelExecutionError(GraphError):
    """Raised when the morsel-parallel execution path fails mid-job.

    A dead worker process or a failed worker task aborts the query
    with this error; the pool respawns workers on the next job, so a
    retry (or serial execution with ``parallelism=1``) succeeds.
    """


class RewriteError(ReproError):
    """Raised when a DIR query cannot be rewritten against an OPT schema."""


class DataGenerationError(ReproError):
    """Raised when synthetic instance data cannot be generated."""
