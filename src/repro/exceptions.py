"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class OntologyError(ReproError):
    """Raised when an ontology is malformed or an operation is invalid."""


class ValidationError(OntologyError):
    """Raised when ontology validation finds integrity violations."""


class SchemaError(ReproError):
    """Raised for invalid property-graph-schema operations."""


class OptimizationError(ReproError):
    """Raised when a schema optimization algorithm cannot proceed."""


class GraphError(ReproError):
    """Raised by the property-graph storage engine."""


class StorageError(ReproError):
    """Raised by the durable storage subsystem (snapshots, WAL, recovery)."""


class QueryError(ReproError):
    """Raised for malformed queries (lexing, parsing, or binding errors)."""


class QuerySyntaxError(QueryError):
    """Raised when query text cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class RewriteError(ReproError):
    """Raised when a DIR query cannot be rewritten against an OPT schema."""


class DataGenerationError(ReproError):
    """Raised when synthetic instance data cannot be generated."""
