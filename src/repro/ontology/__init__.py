"""Ontology data model, builders, statistics and workload summaries."""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import (
    Concept,
    DataProperty,
    DataType,
    ISA_LABEL,
    Ontology,
    Relationship,
    RelationshipType,
    UNION_OF_LABEL,
    jaccard_similarity,
)
from repro.ontology.stats import (
    DataStatistics,
    direct_graph_size_bytes,
    synthesize_statistics,
)
from repro.ontology.validation import validate_ontology
from repro.ontology.workload import WorkloadSummary

__all__ = [
    "Concept",
    "DataProperty",
    "DataStatistics",
    "DataType",
    "ISA_LABEL",
    "Ontology",
    "OntologyBuilder",
    "Relationship",
    "RelationshipType",
    "UNION_OF_LABEL",
    "WorkloadSummary",
    "direct_graph_size_bytes",
    "jaccard_similarity",
    "synthesize_statistics",
    "validate_ontology",
]
