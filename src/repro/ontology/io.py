"""Ontology serialization: JSON round-trip and a tiny OWL-ish loader.

The JSON format is the library's native interchange format::

    {
      "name": "medical",
      "concepts": {"Drug": {"name": "STRING", "brand": "STRING"}, ...},
      "relationships": [
        {"label": "treat", "src": "Drug", "dst": "Indication",
         "type": "1:M"},
        ...
      ]
    }

The OWL-ish loader accepts a small line-oriented subset of functional
OWL syntax so that hand-written ontology files remain readable::

    Class(Drug)
    DataProperty(Drug name STRING)
    ObjectProperty(treat Drug Indication 1:M)
    SubClassOf(DrugFoodInteraction DrugInteraction)
    UnionOf(Risk ContraIndication BlackBoxWarning)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import OntologyError
from repro.ontology.model import (
    Concept,
    DataProperty,
    DataType,
    Ontology,
    RelationshipType,
)


def ontology_to_dict(ontology: Ontology) -> dict:
    """Serialize an ontology to plain JSON-compatible data."""
    return {
        "name": ontology.name,
        "concepts": {
            concept.name: {
                p.name: p.data_type.label for p in concept.properties.values()
            }
            for concept in ontology.iter_concepts()
        },
        "relationships": [
            {
                "id": rel.rel_id,
                "label": rel.label,
                "src": rel.src,
                "dst": rel.dst,
                "type": rel.rel_type.value,
            }
            for rel in ontology.iter_relationships()
        ],
    }


def ontology_from_dict(data: dict) -> Ontology:
    """Deserialize an ontology previously produced by ontology_to_dict."""
    try:
        ontology = Ontology(data.get("name", "ontology"))
        for concept_name, props in data["concepts"].items():
            concept = Concept(concept_name)
            for prop_name, type_name in props.items():
                concept.add_property(
                    DataProperty(prop_name, DataType.from_name(type_name))
                )
            ontology.add_concept(concept)
        for rel in data["relationships"]:
            ontology.add_relationship(
                rel["label"],
                rel["src"],
                rel["dst"],
                RelationshipType(rel["type"]),
                rel_id=rel.get("id"),
            )
    except (KeyError, TypeError, AttributeError) as exc:
        raise OntologyError(f"malformed ontology document: {exc}") from exc
    return ontology


def dump_json(ontology: Ontology, path: str | Path) -> None:
    # Keys keep insertion order: concept declaration order is semantic
    # (merged schema-node names follow it, per Figure 6).
    Path(path).write_text(
        json.dumps(ontology_to_dict(ontology), indent=2)
    )


def load_json(path: str | Path) -> Ontology:
    return ontology_from_dict(json.loads(Path(path).read_text()))


def dumps(ontology: Ontology) -> str:
    return json.dumps(ontology_to_dict(ontology), indent=2)


def loads(text: str) -> Ontology:
    return ontology_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# OWL-ish functional-syntax subset
# ----------------------------------------------------------------------
def load_owl_functional(text: str, name: str = "ontology") -> Ontology:
    """Parse the line-oriented OWL-ish subset described in the module doc."""
    ontology = Ontology(name)
    pending_rels: list[tuple[str, str, str, RelationshipType]] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, rest = line.partition("(")
        if not rest.endswith(")"):
            raise OntologyError(f"line {lineno}: missing closing parenthesis")
        args = rest[:-1].split()
        if head == "Class":
            _expect_args(args, 1, lineno)
            ontology.add_concept(args[0])
        elif head == "DataProperty":
            _expect_args(args, 3, lineno)
            concept, prop, type_name = args
            ontology.concept(concept).add_property(
                DataProperty(prop, DataType.from_name(type_name))
            )
        elif head == "ObjectProperty":
            _expect_args(args, 4, lineno)
            label, src, dst, type_name = args
            pending_rels.append(
                (label, src, dst, RelationshipType(type_name))
            )
        elif head == "SubClassOf":
            _expect_args(args, 2, lineno)
            child, parent = args
            pending_rels.append(
                ("isA", parent, child, RelationshipType.INHERITANCE)
            )
        elif head == "UnionOf":
            if len(args) < 2:
                raise OntologyError(
                    f"line {lineno}: UnionOf needs a union and >=1 member"
                )
            union_concept, *members = args
            for member in members:
                pending_rels.append(
                    (
                        "unionOf",
                        union_concept,
                        member,
                        RelationshipType.UNION,
                    )
                )
        else:
            raise OntologyError(f"line {lineno}: unknown directive {head!r}")
    for label, src, dst, rel_type in pending_rels:
        ontology.add_relationship(label, src, dst, rel_type)
    return ontology


def _expect_args(args: list[str], count: int, lineno: int) -> None:
    if len(args) != count:
        raise OntologyError(
            f"line {lineno}: expected {count} arguments, got {len(args)}"
        )
