"""Core ontology data model.

An :class:`Ontology` follows Definition 1 of the paper: a set of concepts
``C``, data properties ``P`` attached to concepts, and typed relationships
``R`` between concepts.  Relationship types are the five the paper's rules
operate on: ``1:1``, ``1:M``, ``M:N``, ``union`` and ``inheritance``.

Conventions (matching the paper's Algorithms 1-4):

* For a **union** relationship, ``src`` is the *union* concept and ``dst``
  is the *member* concept.
* For an **inheritance** relationship, ``src`` is the *parent* concept and
  ``dst`` is the *child* concept.
* For a **1:M** relationship, ``src`` is the "one" side and ``dst`` is the
  "many" side (one ``src`` instance relates to many ``dst`` instances).

At the *instance* level (property graphs built from the ontology), ``isA``
edges point child -> parent and ``unionOf`` edges point member -> union,
which matches the example queries in Section 5.3 of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from repro.exceptions import OntologyError

#: Edge label used for materialized inheritance relationships.
ISA_LABEL = "isA"

#: Edge label used for materialized union-membership relationships.
UNION_OF_LABEL = "unionOf"


class RelationshipType(str, Enum):
    """The five relationship types handled by the optimization rules."""

    ONE_TO_ONE = "1:1"
    ONE_TO_MANY = "1:M"
    MANY_TO_MANY = "M:N"
    UNION = "union"
    INHERITANCE = "inheritance"

    @property
    def is_functional(self) -> bool:
        """True for 1:1, 1:M and M:N relationships (OWL ObjectProperties)."""
        return self in (
            RelationshipType.ONE_TO_ONE,
            RelationshipType.ONE_TO_MANY,
            RelationshipType.MANY_TO_MANY,
        )

    @property
    def is_structural(self) -> bool:
        """True for union and inheritance relationships."""
        return not self.is_functional


class DataType(Enum):
    """Primitive data-property types with their storage size in bytes.

    The byte sizes feed the cost model (Equation 4/5 uses ``p.type`` as the
    data-type size of a property).
    """

    BOOL = ("BOOL", 1)
    INT = ("INT", 8)
    FLOAT = ("FLOAT", 8)
    DATE = ("DATE", 8)
    STRING = ("STRING", 32)
    TEXT = ("TEXT", 256)

    def __init__(self, label: str, size_bytes: int):
        self.label = label
        self.size_bytes = size_bytes

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Look up a data type by its (case-insensitive) name."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise OntologyError(f"unknown data type: {name!r}") from None


@dataclass(frozen=True)
class DataProperty:
    """A data property (OWL DataProperty) attached to a concept."""

    name: str
    data_type: DataType = DataType.STRING

    @property
    def size_bytes(self) -> int:
        return self.data_type.size_bytes


@dataclass
class Concept:
    """A concept (OWL class) with its data properties."""

    name: str
    properties: dict[str, DataProperty] = field(default_factory=dict)

    def add_property(self, prop: DataProperty) -> None:
        if prop.name in self.properties:
            raise OntologyError(
                f"concept {self.name!r} already has property {prop.name!r}"
            )
        self.properties[prop.name] = prop

    def property_names(self) -> frozenset[str]:
        return frozenset(self.properties)

    @property
    def total_property_bytes(self) -> int:
        """Sum of the data-type sizes of all properties of this concept."""
        return sum(p.size_bytes for p in self.properties.values())

    def copy(self) -> "Concept":
        return Concept(self.name, dict(self.properties))


@dataclass(frozen=True)
class Relationship:
    """A typed relationship (OWL ObjectProperty / isA / unionOf).

    ``label`` is the edge label used when the relationship is materialized
    in a property graph.  Inheritance relationships always use ``isA`` and
    union relationships always use ``unionOf``.
    """

    rel_id: str
    label: str
    src: str
    dst: str
    rel_type: RelationshipType

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.src, self.dst))

    def touches(self, concept: str) -> bool:
        return concept == self.src or concept == self.dst

    def other(self, concept: str) -> str:
        """The endpoint that is not ``concept`` (self-loops return itself)."""
        if concept == self.src:
            return self.dst
        if concept == self.dst:
            return self.src
        raise OntologyError(
            f"concept {concept!r} is not an endpoint of {self.rel_id}"
        )


class Ontology:
    """A mutable ontology: concepts, data properties and relationships.

    Relationships get stable identifiers (``r0001``, ``r0002``, ...) so that
    the optimizer, the schema mapping and the query rewriter can refer to
    them unambiguously even after the schema has been transformed.
    """

    def __init__(self, name: str = "ontology"):
        self.name = name
        self.concepts: dict[str, Concept] = {}
        self.relationships: dict[str, Relationship] = {}
        self._out: dict[str, set[str]] = {}
        self._in: dict[str, set[str]] = {}
        self._id_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_concept(self, concept: Concept | str) -> Concept:
        if isinstance(concept, str):
            concept = Concept(concept)
        if concept.name in self.concepts:
            raise OntologyError(f"duplicate concept {concept.name!r}")
        self.concepts[concept.name] = concept
        self._out[concept.name] = set()
        self._in[concept.name] = set()
        return concept

    def add_relationship(
        self,
        label: str,
        src: str,
        dst: str,
        rel_type: RelationshipType | str,
        rel_id: str | None = None,
    ) -> Relationship:
        """Add a relationship; endpoints must already exist as concepts."""
        rel_type = RelationshipType(rel_type)
        for endpoint in (src, dst):
            if endpoint not in self.concepts:
                raise OntologyError(f"unknown concept {endpoint!r}")
        if rel_type is RelationshipType.INHERITANCE:
            label = ISA_LABEL
        elif rel_type is RelationshipType.UNION:
            label = UNION_OF_LABEL
        if rel_id is None:
            rel_id = f"r{next(self._id_counter):04d}"
        if rel_id in self.relationships:
            raise OntologyError(f"duplicate relationship id {rel_id!r}")
        rel = Relationship(rel_id, label, src, dst, rel_type)
        self.relationships[rel_id] = rel
        self._out[src].add(rel_id)
        self._in[dst].add(rel_id)
        return rel

    def remove_relationship(self, rel_id: str) -> Relationship:
        rel = self.relationships.pop(rel_id, None)
        if rel is None:
            raise OntologyError(f"unknown relationship {rel_id!r}")
        self._out[rel.src].discard(rel_id)
        self._in[rel.dst].discard(rel_id)
        return rel

    def remove_concept(self, name: str) -> Concept:
        """Remove a concept and every relationship touching it."""
        concept = self.concepts.pop(name, None)
        if concept is None:
            raise OntologyError(f"unknown concept {name!r}")
        for rel in list(self.relationships.values()):
            if rel.touches(name):
                self.remove_relationship(rel.rel_id)
        del self._out[name]
        del self._in[name]
        return concept

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def concept(self, name: str) -> Concept:
        try:
            return self.concepts[name]
        except KeyError:
            raise OntologyError(f"unknown concept {name!r}") from None

    def relationship(self, rel_id: str) -> Relationship:
        try:
            return self.relationships[rel_id]
        except KeyError:
            raise OntologyError(f"unknown relationship {rel_id!r}") from None

    def out_edges(self, concept: str) -> list[Relationship]:
        """Relationships with ``concept`` as their source (``ci.outE``)."""
        return [self.relationships[r] for r in sorted(self._out[concept])]

    def in_edges(self, concept: str) -> list[Relationship]:
        """Relationships with ``concept`` as their destination (``ci.inE``)."""
        return [self.relationships[r] for r in sorted(self._in[concept])]

    def edges_of(self, concept: str) -> list[Relationship]:
        """All relationships touching ``concept`` (``ci.Ri``)."""
        ids = self._out[concept] | self._in[concept]
        return [self.relationships[r] for r in sorted(ids)]

    def relationships_of_type(
        self, rel_type: RelationshipType
    ) -> list[Relationship]:
        return [
            r for r in self.relationships.values() if r.rel_type is rel_type
        ]

    def find_relationship(
        self, label: str, concept_a: str, concept_b: str
    ) -> Relationship | None:
        """Find a relationship by label and (unordered) endpoints.

        The query rewriter uses this to resolve a pattern hop such as
        ``(a:Drug)-[:treat]->(b:Indication)`` back to its ontology
        relationship.
        """
        wanted = frozenset((concept_a, concept_b))
        for rel in self.relationships.values():
            if rel.label == label and rel.endpoints() == wanted:
                return rel
        return None

    def iter_concepts(self) -> Iterator[Concept]:
        return iter(self.concepts.values())

    def iter_relationships(self) -> Iterator[Relationship]:
        return iter(self.relationships.values())

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def union_concepts(self) -> set[str]:
        """Concepts that act as the union side of a union relationship."""
        return {
            r.src
            for r in self.relationships.values()
            if r.rel_type is RelationshipType.UNION
        }

    def parent_concepts(self) -> set[str]:
        """Concepts that act as the parent side of an inheritance."""
        return {
            r.src
            for r in self.relationships.values()
            if r.rel_type is RelationshipType.INHERITANCE
        }

    def members_of(self, union_concept: str) -> list[str]:
        return [
            r.dst
            for r in self.out_edges(union_concept)
            if r.rel_type is RelationshipType.UNION
        ]

    def children_of(self, parent: str) -> list[str]:
        return [
            r.dst
            for r in self.out_edges(parent)
            if r.rel_type is RelationshipType.INHERITANCE
        ]

    def parents_of(self, child: str) -> list[str]:
        return [
            r.src
            for r in self.in_edges(child)
            if r.rel_type is RelationshipType.INHERITANCE
        ]

    def derived_concepts(self) -> set[str]:
        """Concepts whose instances are derived twins (unions and parents).

        See :mod:`repro.data.generator`: instances of union concepts are
        twins of member instances, and instances of parent concepts are
        twins of child instances.
        """
        return self.union_concepts() | self.parent_concepts()

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def num_concepts(self) -> int:
        return len(self.concepts)

    @property
    def num_properties(self) -> int:
        return sum(len(c.properties) for c in self.concepts.values())

    @property
    def num_relationships(self) -> int:
        return len(self.relationships)

    def relationship_type_counts(self) -> dict[RelationshipType, int]:
        counts = {t: 0 for t in RelationshipType}
        for rel in self.relationships.values():
            counts[rel.rel_type] += 1
        return counts

    def summary(self) -> str:
        counts = self.relationship_type_counts()
        parts = ", ".join(
            f"{n} {t.value}" for t, n in counts.items() if n
        )
        return (
            f"Ontology {self.name!r}: {self.num_concepts} concepts, "
            f"{self.num_properties} properties, "
            f"{self.num_relationships} relationships ({parts})"
        )

    # ------------------------------------------------------------------
    # Copying / equality
    # ------------------------------------------------------------------
    def copy(self) -> "Ontology":
        clone = Ontology(self.name)
        for concept in self.concepts.values():
            clone.add_concept(concept.copy())
        for rel in self.relationships.values():
            clone.add_relationship(
                rel.label, rel.src, rel.dst, rel.rel_type, rel_id=rel.rel_id
            )
        # Keep generating ids after the highest existing one.
        max_id = 0
        for rel_id in self.relationships:
            if rel_id.startswith("r") and rel_id[1:].isdigit():
                max_id = max(max_id, int(rel_id[1:]))
        clone._id_counter = itertools.count(max_id + 1)
        return clone

    def structurally_equal(self, other: "Ontology") -> bool:
        """True when both ontologies have identical concepts/props/rels."""
        if set(self.concepts) != set(other.concepts):
            return False
        for name, concept in self.concepts.items():
            if concept.properties != other.concepts[name].properties:
                return False
        mine = {
            (r.label, r.src, r.dst, r.rel_type)
            for r in self.relationships.values()
        }
        theirs = {
            (r.label, r.src, r.dst, r.rel_type)
            for r in other.relationships.values()
        }
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two property-name sets (Equation 1).

    Returns 0.0 when both sets are empty (the paper leaves this case
    undefined; 0.0 keeps the inheritance rule inert, which is the safe
    choice because there is nothing to copy either way).
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)
