"""Workload summaries: access frequencies over ontology elements.

The paper (Section 4.2): *"Access frequencies provide an abstraction of the
workload in terms of how each concept, relationship, and data property
[is] accessed by each query in the workload. We use AF(ci -rk-> cj.Pj) to
indicate the frequency of queries that access a data property in cj.Pj
from the concept ci through the relationship rk."*

Two standard summaries are provided, matching the evaluation section:

* :meth:`WorkloadSummary.uniform` - every concept equally likely;
* :meth:`WorkloadSummary.zipf` - Zipf-distributed weight over concepts
  ranked by degree ("the Zipf workload gives more access to the key
  concepts in the ontology").

When no prior knowledge exists the paper assumes a uniform distribution;
callers that pass ``workload=None`` to the optimizers get exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import OntologyError
from repro.ontology.model import Ontology, Relationship


@dataclass
class WorkloadSummary:
    """Per-concept access weights, normalized to sum to 1.

    ``total_queries`` scales weights into absolute query counts, which is
    what the benefit model consumes (AF values are "the number of
    queries").
    """

    concept_weights: dict[str, float]
    total_queries: int = 1000
    name: str = "custom"
    #: Optional per-(rel_id, property) multiplicative bias, default 1.0.
    property_bias: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.concept_weights.values())
        if total <= 0:
            raise OntologyError("workload weights must have a positive sum")
        self.concept_weights = {
            c: w / total for c, w in self.concept_weights.items()
        }

    # ------------------------------------------------------------------
    # Access-frequency accessors
    # ------------------------------------------------------------------
    def af_concept(self, concept: str) -> float:
        """AF(ci): expected number of queries touching ``concept``."""
        return self.total_queries * self.concept_weights.get(concept, 0.0)

    def af_relationship(self, rel: Relationship) -> float:
        """AF(ci -r-> cj): queries traversing relationship ``rel``.

        Modeled as the mean of the endpoint frequencies: a traversal is as
        frequent as interest in either endpoint.
        """
        src_w = self.concept_weights.get(rel.src, 0.0)
        dst_w = self.concept_weights.get(rel.dst, 0.0)
        return self.total_queries * (src_w + dst_w) / 2.0

    def af_property(
        self, rel: Relationship, prop: str, n_props: int
    ) -> float:
        """AF(ci -r-> cj.p): queries reading property ``p`` across ``rel``.

        The relationship frequency is split evenly over the destination's
        ``n_props`` properties, optionally scaled by a per-property bias.
        """
        if n_props <= 0:
            return 0.0
        bias = self.property_bias.get((rel.rel_id, prop), 1.0)
        return self.af_relationship(rel) * bias / n_props

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, ontology: Ontology, total_queries: int = 1000
    ) -> "WorkloadSummary":
        """Every concept accessed with equal probability."""
        weights = {c: 1.0 for c in ontology.concepts}
        return cls(weights, total_queries, name="uniform")

    @classmethod
    def zipf(
        cls,
        ontology: Ontology,
        s: float = 1.0,
        total_queries: int = 1000,
    ) -> "WorkloadSummary":
        """Zipf(s) weights over concepts ranked by (undirected) degree.

        High-degree concepts are the domain's key concepts (the same
        intuition OntologyPR formalizes), so they receive the head of the
        Zipf distribution.
        """
        degree = {
            c: len(ontology.edges_of(c)) for c in ontology.concepts
        }
        ranked = sorted(
            ontology.concepts, key=lambda c: (-degree[c], c)
        )
        weights = {
            concept: 1.0 / (rank + 1) ** s
            for rank, concept in enumerate(ranked)
        }
        return cls(weights, total_queries, name="zipf")

    @classmethod
    def from_counts(
        cls, counts: dict[str, int], name: str = "observed"
    ) -> "WorkloadSummary":
        """Build a summary from observed per-concept query counts."""
        total = sum(counts.values())
        if total <= 0:
            raise OntologyError("observed counts must have a positive sum")
        return cls(dict(counts), total_queries=total, name=name)
