"""Small sample ontologies used in the paper's figures and in tests."""

from __future__ import annotations

from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology


def figure2_medical_ontology() -> Ontology:
    """The medical ontology of Figure 2 in the paper.

    Concepts: Drug, Indication, Condition, DrugInteraction,
    DrugFoodInteraction, DrugLabInteraction, Risk (union of
    ContraIndication and BlackBoxWarning).

    Relationships: Drug -treat(1:M)-> Indication,
    Indication -has(1:1)-> Condition, Drug -has(1:M)-> DrugInteraction,
    DrugInteraction isA DrugFoodInteraction / DrugLabInteraction,
    Drug -cause(1:M)-> Risk, Risk unionOf ContraIndication /
    BlackBoxWarning.
    """
    return (
        OntologyBuilder("figure2-medical")
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .concept("Condition", name="STRING")
        .concept("DrugInteraction", summary="STRING")
        .concept("DrugFoodInteraction", risk="STRING")
        .concept("DrugLabInteraction", mechanism="STRING")
        .concept("Risk")
        .concept("ContraIndication", description="STRING")
        .concept("BlackBoxWarning", note="STRING", route="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .one_to_one("has", "Indication", "Condition")
        .one_to_many("has", "Drug", "DrugInteraction")
        .inherits("DrugInteraction", "DrugFoodInteraction",
                  "DrugLabInteraction")
        .one_to_many("cause", "Drug", "Risk")
        .union("Risk", "ContraIndication", "BlackBoxWarning")
        .build()
    )


def figure1_mini_ontology() -> Ontology:
    """The fragment used in the paper's motivating examples (Figure 1).

    Drug -treat(1:M)-> Indication plus the DrugInteraction inheritance
    triangle.
    """
    return (
        OntologyBuilder("figure1-mini")
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .concept("DrugInteraction", summary="STRING")
        .concept("DrugFoodInteraction", risk="STRING")
        .concept("DrugLabInteraction", mechanism="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .one_to_many("has", "Drug", "DrugInteraction")
        .inherits("DrugInteraction", "DrugFoodInteraction",
                  "DrugLabInteraction")
        .build()
    )


def chain_ontology(length: int = 3) -> Ontology:
    """A 1:M chain C0 -> C1 -> ... used to test transitive propagation."""
    builder = OntologyBuilder(f"chain-{length}")
    for i in range(length):
        builder.concept(f"C{i}", **{f"p{i}": "STRING"})
    for i in range(length - 1):
        builder.one_to_many(f"link{i}", f"C{i}", f"C{i + 1}")
    return builder.build()
