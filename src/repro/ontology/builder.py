"""Fluent builder for ontologies.

Example::

    onto = (
        OntologyBuilder("medical")
        .concept("Drug", name="STRING", brand="STRING")
        .concept("Indication", desc="STRING")
        .one_to_many("treat", "Drug", "Indication")
        .build()
    )
"""

from __future__ import annotations

from repro.exceptions import OntologyError
from repro.ontology.model import (
    Concept,
    DataProperty,
    DataType,
    Ontology,
    RelationshipType,
)


class OntologyBuilder:
    """Incrementally build an :class:`~repro.ontology.model.Ontology`."""

    def __init__(self, name: str = "ontology"):
        self._ontology = Ontology(name)
        self._built = False

    def concept(
        self, concept_name: str, /, **properties: str | DataType
    ) -> "OntologyBuilder":
        """Add a concept with keyword-specified data properties.

        Property values may be :class:`DataType` members or their names
        (``"STRING"``, ``"INT"``, ...).  ``concept_name`` is positional-only
        so properties named ``concept_name`` (or ``name``) stay usable.
        """
        concept = Concept(concept_name)
        for prop_name, dtype in properties.items():
            if isinstance(dtype, str):
                dtype = DataType.from_name(dtype)
            concept.add_property(DataProperty(prop_name, dtype))
        self._ontology.add_concept(concept)
        return self

    def prop(self, concept: str, name: str, dtype: str | DataType = DataType.STRING) -> "OntologyBuilder":
        """Add a single data property to an existing concept."""
        if isinstance(dtype, str):
            dtype = DataType.from_name(dtype)
        self._ontology.concept(concept).add_property(DataProperty(name, dtype))
        return self

    def relationship(
        self,
        label: str,
        src: str,
        dst: str,
        rel_type: RelationshipType | str,
    ) -> "OntologyBuilder":
        self._ontology.add_relationship(label, src, dst, rel_type)
        return self

    def one_to_one(self, label: str, src: str, dst: str) -> "OntologyBuilder":
        return self.relationship(label, src, dst, RelationshipType.ONE_TO_ONE)

    def one_to_many(self, label: str, src: str, dst: str) -> "OntologyBuilder":
        return self.relationship(label, src, dst, RelationshipType.ONE_TO_MANY)

    def many_to_many(self, label: str, src: str, dst: str) -> "OntologyBuilder":
        return self.relationship(label, src, dst, RelationshipType.MANY_TO_MANY)

    def union(self, union_concept: str, *members: str) -> "OntologyBuilder":
        """Declare ``union_concept`` as the union of ``members``."""
        if not members:
            raise OntologyError("a union needs at least one member concept")
        for member in members:
            self.relationship(
                "unionOf", union_concept, member, RelationshipType.UNION
            )
        return self

    def inherits(self, parent: str, *children: str) -> "OntologyBuilder":
        """Declare inheritance relationships parent -> each child."""
        if not children:
            raise OntologyError("inherits() needs at least one child concept")
        for child in children:
            self.relationship(
                "isA", parent, child, RelationshipType.INHERITANCE
            )
        return self

    def build(self, validate: bool = True) -> Ontology:
        """Finalize and (optionally) validate the ontology."""
        if self._built:
            raise OntologyError("builder already consumed; create a new one")
        self._built = True
        if validate:
            from repro.ontology.validation import validate_ontology

            validate_ontology(self._ontology)
        return self._ontology
