"""Data characteristics: cardinalities of concepts and relationships.

Section 4.2 of the paper: *"Data characteristics contain the basic
statistics about each concept, data property, and relationship specified in
the given ontology. The statistics include the cardinality of data
instances of each concept and relationship, as well as the data type of
each data property."*

Data-property type sizes live on :class:`~repro.ontology.model.DataType`;
this module supplies the instance/edge counts plus a synthesizer that
derives a *consistent* set of cardinalities from an ontology:

* 1:1 endpoints have equal cardinality (each instance pairs with one
  partner);
* a 1:M relationship has one edge per "many"-side instance;
* union-concept cardinality equals the sum of its member cardinalities
  (each member instance *is* a union instance);
* parent-concept cardinality equals the sum over children of the child
  cardinalities (this reproduction generates parent instances as twins of
  child instances; see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import OntologyError
from repro.ontology.model import Ontology, RelationshipType

#: Bytes charged per stored edge by the space/cost model.
EDGE_SIZE_BYTES = 16


@dataclass
class DataStatistics:
    """Instance counts for concepts and edge counts for relationships."""

    concept_cardinality: dict[str, int] = field(default_factory=dict)
    relationship_cardinality: dict[str, int] = field(default_factory=dict)

    def card(self, concept: str) -> int:
        """``|ci|``: the number of instances of a concept."""
        try:
            return self.concept_cardinality[concept]
        except KeyError:
            raise OntologyError(
                f"no cardinality recorded for concept {concept!r}"
            ) from None

    def rel_card(self, rel_id: str) -> int:
        """``|r|``: the number of instance edges of a relationship."""
        try:
            return self.relationship_cardinality[rel_id]
        except KeyError:
            raise OntologyError(
                f"no cardinality recorded for relationship {rel_id!r}"
            ) from None

    def size_of_concept(self, ontology: Ontology, concept: str) -> int:
        """Bytes consumed by all instances of ``concept`` (Equation 2)."""
        return self.card(concept) * max(
            1, ontology.concept(concept).total_property_bytes
        )

    def scaled(self, factor: float) -> "DataStatistics":
        """A copy with every cardinality multiplied by ``factor`` (>=1)."""
        return DataStatistics(
            {c: max(1, int(round(n * factor)))
             for c, n in self.concept_cardinality.items()},
            {r: max(1, int(round(n * factor)))
             for r, n in self.relationship_cardinality.items()},
        )

    def validate_against(self, ontology: Ontology) -> None:
        """Check that stats cover exactly the ontology's elements."""
        missing_c = set(ontology.concepts) - set(self.concept_cardinality)
        missing_r = set(ontology.relationships) - set(
            self.relationship_cardinality
        )
        if missing_c or missing_r:
            raise OntologyError(
                "statistics incomplete: missing concepts "
                f"{sorted(missing_c)}, relationships {sorted(missing_r)}"
            )


def synthesize_statistics(
    ontology: Ontology,
    base_cardinality: int = 1000,
    seed: int = 7,
    spread: float = 4.0,
    mn_fanout: int = 3,
) -> DataStatistics:
    """Derive consistent cardinalities for an ontology.

    ``base_cardinality`` sets the scale of "leaf" concepts; individual
    concepts vary by up to ``spread``x around it (seeded, reproducible).
    Derived concepts (unions, inheritance parents) get their cardinality
    from their members/children, honoring the invariants in the module
    docstring.
    """
    rng = random.Random(seed)
    stats = DataStatistics()

    # 1. Seed every non-derived concept with a random base cardinality.
    derived = ontology.derived_concepts()
    for concept in ontology.concepts:
        if concept not in derived:
            factor = spread ** rng.uniform(-0.5, 0.5)
            stats.concept_cardinality[concept] = max(
                4, int(base_cardinality * factor)
            )

    # 2. Resolve derived concepts bottom-up (children before parents,
    #    members before unions). Validation guarantees acyclicity.
    def resolve(concept: str, trail: tuple[str, ...] = ()) -> int:
        if concept in stats.concept_cardinality:
            return stats.concept_cardinality[concept]
        if concept in trail:
            raise OntologyError(
                f"cyclic derivation through {concept!r}"
            )
        parts = ontology.children_of(concept) + ontology.members_of(concept)
        if not parts:
            # Derived concept with no resolvable parts (should not happen
            # for validated ontologies); fall back to the base size.
            total = base_cardinality
        else:
            total = sum(resolve(p, trail + (concept,)) for p in parts)
        stats.concept_cardinality[concept] = max(4, total)
        return stats.concept_cardinality[concept]

    for concept in ontology.concepts:
        resolve(concept)

    # 3. Harmonize 1:1 endpoints: both sides take the smaller cardinality
    #    so a full bijection exists (unless one endpoint is derived).
    for rel in ontology.relationships_of_type(RelationshipType.ONE_TO_ONE):
        if rel.src in derived or rel.dst in derived:
            continue
        low = min(stats.card(rel.src), stats.card(rel.dst))
        stats.concept_cardinality[rel.src] = low
        stats.concept_cardinality[rel.dst] = low

    # 4. Relationship edge counts.
    for rel in ontology.iter_relationships():
        if rel.rel_type is RelationshipType.ONE_TO_ONE:
            count = min(stats.card(rel.src), stats.card(rel.dst))
        elif rel.rel_type is RelationshipType.ONE_TO_MANY:
            count = stats.card(rel.dst)
        elif rel.rel_type is RelationshipType.MANY_TO_MANY:
            count = mn_fanout * max(stats.card(rel.src), stats.card(rel.dst))
        elif rel.rel_type is RelationshipType.INHERITANCE:
            count = stats.card(rel.dst)  # one isA edge per child instance
        else:  # UNION: one unionOf edge per member instance
            count = stats.card(rel.dst)
        stats.relationship_cardinality[rel.rel_id] = max(1, count)

    return stats


def direct_graph_size_bytes(
    ontology: Ontology, stats: DataStatistics
) -> int:
    """``S_DIR``: bytes used by the directly-mapped property graph."""
    vertex_bytes = sum(
        stats.card(c.name) * max(1, c.total_property_bytes)
        for c in ontology.iter_concepts()
    )
    edge_bytes = sum(
        stats.rel_card(r.rel_id) * EDGE_SIZE_BYTES
        for r in ontology.iter_relationships()
    )
    return vertex_bytes + edge_bytes
