"""Ontology integrity validation.

The rule engine and the optimizers assume a handful of structural
invariants; :func:`validate_ontology` checks them up front so that
violations surface as clear errors instead of corrupt schemas:

* relationship endpoints exist (enforced at construction, re-checked);
* the inheritance relation is acyclic;
* union membership is acyclic and a union concept is not its own member;
* a concept is not simultaneously a union concept and a member of itself
  through any chain;
* no duplicate (label, src, dst) functional relationships.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.ontology.model import Ontology, RelationshipType


def _find_cycle(adjacency: dict[str, list[str]]) -> list[str] | None:
    """Return one cycle as a list of nodes, or None when acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            if color.get(nxt, WHITE) == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cycle = visit(nxt)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in adjacency:
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def validate_ontology(ontology: Ontology) -> None:
    """Raise :class:`ValidationError` when an invariant is violated."""
    _check_endpoints(ontology)
    _check_self_loops(ontology)
    _check_acyclic(ontology, RelationshipType.INHERITANCE, "inheritance")
    _check_acyclic(ontology, RelationshipType.UNION, "union")
    _check_duplicate_functional(ontology)


def _check_endpoints(ontology: Ontology) -> None:
    for rel in ontology.iter_relationships():
        for endpoint in (rel.src, rel.dst):
            if endpoint not in ontology.concepts:
                raise ValidationError(
                    f"relationship {rel.rel_id} references unknown "
                    f"concept {endpoint!r}"
                )


def _check_acyclic(
    ontology: Ontology, rel_type: RelationshipType, what: str
) -> None:
    adjacency: dict[str, list[str]] = {c: [] for c in ontology.concepts}
    for rel in ontology.iter_relationships():
        if rel.rel_type is rel_type:
            adjacency[rel.src].append(rel.dst)
    cycle = _find_cycle(adjacency)
    if cycle is not None:
        raise ValidationError(
            f"{what} relationships form a cycle: {' -> '.join(cycle)}"
        )


def _check_duplicate_functional(ontology: Ontology) -> None:
    seen: set[tuple[str, str, str]] = set()
    for rel in ontology.iter_relationships():
        if not rel.rel_type.is_functional:
            continue
        key = (rel.label, rel.src, rel.dst)
        if key in seen:
            raise ValidationError(
                f"duplicate functional relationship {key!r}"
            )
        seen.add(key)


def _check_self_loops(ontology: Ontology) -> None:
    for rel in ontology.iter_relationships():
        if rel.src == rel.dst and rel.rel_type.is_structural:
            raise ValidationError(
                f"{rel.rel_type.value} relationship {rel.rel_id} is a "
                f"self-loop on {rel.src!r}"
            )
