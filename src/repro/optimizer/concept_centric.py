"""Algorithm 7: the concept-centric (CC) optimization algorithm.

Concepts are ranked by ``Score(ci) = pr(ci) * AF(ci) / Size(ci)``
(Equation 2), where ``pr`` is the OntologyPR centrality, ``AF`` the
concept's access frequency, and ``Size`` its storage footprint.  The
algorithm walks concepts in descending score order and greedily applies
every affordable rule on the relationships touching each concept.

Budget handling: a rule application is selected only when its cost fits
the remaining budget; scanning continues in score order (first-fit by
priority).  This matches Algorithm 7's space-exhaustion behavior without
overshooting the budget (the paper's pseudocode breaks after S drops
below zero; see DESIGN.md).

Reproduces: the CC series of Figures 8 and 9 (benefit ratio vs. space
budget on MED and FIN; ``benchmarks/bench_fig8_space_med.py`` /
``benchmarks/bench_fig9_space_fin.py``) and CC's rows in the Table 2
optimization-efficiency comparison
(``benchmarks/bench_table2_efficiency.py``).
"""

from __future__ import annotations

import time

from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.costmodel import CostBenefitModel, RuleItem
from repro.optimizer.pagerank import ontology_pagerank
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Thresholds
from repro.rules.engine import transform
from repro.schema.generate import generate_schema


def concept_scores(
    ontology: Ontology,
    stats: DataStatistics,
    workload: WorkloadSummary,
) -> tuple[dict[str, float], int]:
    """Equation 2 scores for every concept; returns (scores, pr iters)."""
    pr = ontology_pagerank(ontology)
    scores = {}
    for concept in ontology.concepts:
        size = max(1, stats.size_of_concept(ontology, concept))
        scores[concept] = (
            pr[concept] * workload.af_concept(concept) / size
        )
    return scores, pr.iterations


def optimize_concept_centric(
    ontology: Ontology,
    stats: DataStatistics,
    space_limit: int,
    workload: WorkloadSummary | None = None,
    thresholds: Thresholds | None = None,
) -> OptimizationResult:
    """Run the concept-centric algorithm under ``space_limit`` bytes."""
    started = time.perf_counter()
    thresholds = thresholds or Thresholds()
    workload = workload or WorkloadSummary.uniform(ontology)
    model = CostBenefitModel(ontology, stats, workload, thresholds)

    scores, pr_iterations = concept_scores(ontology, stats, workload)
    ranked_concepts = sorted(
        ontology.concepts, key=lambda c: (-scores[c], c)
    )

    selected: list[RuleItem] = []
    seen: set[tuple[str, str, str | None]] = set()
    remaining = space_limit
    for concept in ranked_concepts:
        # Local ordering: the concept's items by descending benefit.
        local_items = sorted(
            model.items_touching(concept),
            key=lambda item: (-item.benefit, item.key),
        )
        for item in local_items:
            if item.key in seen:
                continue
            seen.add(item.key)
            if item.benefit <= 0:
                continue
            if item.cost <= remaining:
                selected.append(item)
                remaining -= item.cost

    selection = model.selection_from_items(selected)
    state = transform(ontology, selection, thresholds)
    schema, mapping = generate_schema(state, name="cc")
    elapsed = time.perf_counter() - started
    return OptimizationResult(
        algorithm="CC",
        schema=schema,
        mapping=mapping,
        state=state,
        selection=selection,
        selected_items=selected,
        total_benefit=model.benefit_of(selected),
        total_cost=model.cost_of(selected),
        benefit_ratio=model.benefit_ratio(selected),
        space_limit=space_limit,
        elapsed_seconds=elapsed,
        extras={
            "pagerank_iterations": pr_iterations,
            "concept_order": ranked_concepts,
        },
    )
