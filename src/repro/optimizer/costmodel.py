"""Cost-benefit model for rule applications (Equations 3-5).

Each potentially space-consuming rule application becomes a priced *item*:

* one item per **union** relationship (Equation 3);
* one item per **inheritance** relationship whose Jaccard similarity
  falls outside the (theta2, theta1) band (Equation 4);
* one item per **(1:M relationship, destination property)** pair
  (Equation 5) - the paper prices each propagated property separately
  ("choosing the appropriate set of data properties from each 1:M
  relationship to propagate is critical");
* two directed halves per **M:N** relationship, each priced like a 1:M
  (Section 4.2.2: "each M:N relationship is equivalent to two 1:M
  relationships").

**1:1** relationships cost nothing (they *reduce* space - Figure 6), so
they are not items; every optimizer applies them unconditionally.

Costs are expressed in bytes.  Equation 3 counts copied *edges*; we charge
``EDGE_SIZE_BYTES`` per copied edge so that all three equations share one
unit (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import OptimizationError
from repro.ontology.model import (
    Ontology,
    Relationship,
    RelationshipType,
    jaccard_similarity,
)
from repro.ontology.stats import DataStatistics, EDGE_SIZE_BYTES
from repro.ontology.workload import WorkloadSummary
from repro.rules.base import Selection, Thresholds


@dataclass(frozen=True)
class RuleItem:
    """One priced rule application."""

    rel_id: str
    rel_type: RelationshipType
    direction: str = "fwd"      # "rev" only for the second M:N half
    prop: str | None = None    # set for 1:M / M:N items
    benefit: float = 0.0
    cost: int = 0

    @property
    def key(self) -> tuple[str, str, str | None]:
        return (self.rel_id, self.direction, self.prop)


class CostBenefitModel:
    """Prices every rule application of an ontology (Section 4.2.2)."""

    def __init__(
        self,
        ontology: Ontology,
        stats: DataStatistics,
        workload: WorkloadSummary | None = None,
        thresholds: Thresholds | None = None,
    ):
        self.ontology = ontology
        self.stats = stats
        self.workload = workload or WorkloadSummary.uniform(ontology)
        self.thresholds = thresholds or Thresholds()
        self.jaccard: dict[str, float] = {
            rel.rel_id: jaccard_similarity(
                ontology.concept(rel.src).property_names(),
                ontology.concept(rel.dst).property_names(),
            )
            for rel in ontology.relationships_of_type(
                RelationshipType.INHERITANCE
            )
        }
        self._items: list[RuleItem] = self._build_items()

    # ------------------------------------------------------------------
    # Item construction
    # ------------------------------------------------------------------
    def _build_items(self) -> list[RuleItem]:
        items: list[RuleItem] = []
        for rel in self.ontology.iter_relationships():
            if rel.rel_type is RelationshipType.UNION:
                items.append(self._union_item(rel))
            elif rel.rel_type is RelationshipType.INHERITANCE:
                item = self._inheritance_item(rel)
                if item is not None:
                    items.append(item)
            elif rel.rel_type is RelationshipType.ONE_TO_MANY:
                items.extend(self._list_items(rel, "fwd"))
            elif rel.rel_type is RelationshipType.MANY_TO_MANY:
                items.extend(self._list_items(rel, "fwd"))
                items.extend(self._list_items(rel, "rev"))
        return items

    def _union_item(self, rel: Relationship) -> RuleItem:
        """Equation 3: benefit AF(r); cost = edges copied to the member."""
        union_concept = rel.src
        copied_edges = sum(
            self.stats.rel_card(r.rel_id)
            for r in self.ontology.edges_of(union_concept)
            if r.rel_type is not RelationshipType.UNION
        )
        return RuleItem(
            rel_id=rel.rel_id,
            rel_type=rel.rel_type,
            benefit=self.workload.af_relationship(rel),
            cost=copied_edges * EDGE_SIZE_BYTES,
        )

    def _inheritance_item(self, rel: Relationship) -> RuleItem | None:
        """Equation 4; returns None for the inert middle Jaccard band.

        Benefit interpretation: Equation 4 multiplies the access
        frequency by the Jaccard similarity, but applied literally that
        zeroes the benefit of every merge-down application (js < theta2
        implies js ~ 0), contradicting the paper's own microbenchmark
        where such rules are applied under a 50% budget (Q2/Q5).  We
        read the similarity factor as tracking the *direction* of the
        merge: ``js`` for merge-up (the more the child shares, the more
        queries are satisfied at the parent) and ``1 - js`` for
        merge-down (the less the child shares, the more distinct parent
        content becomes locally available).  See DESIGN.md.
        """
        js = self.jaccard[rel.rel_id]
        thresholds = self.thresholds
        if thresholds.theta2 <= js <= thresholds.theta1:
            return None
        # js > theta1: the child's content moves to the parent;
        # js < theta2: the parent's content moves to the child.
        merge_up = js > thresholds.theta1
        mover = rel.dst if merge_up else rel.src
        mover_concept = self.ontology.concept(mover)
        prop_bytes = sum(
            self.stats.card(mover) * p.size_bytes
            for p in mover_concept.properties.values()
        )
        edge_bytes = EDGE_SIZE_BYTES * sum(
            self.stats.rel_card(r.rel_id)
            for r in self.ontology.edges_of(mover)
            if r.rel_type is not RelationshipType.INHERITANCE
        )
        similarity_factor = js if merge_up else (1.0 - js)
        benefit = self.workload.af_relationship(rel) * similarity_factor
        return RuleItem(
            rel_id=rel.rel_id,
            rel_type=rel.rel_type,
            benefit=benefit,
            cost=prop_bytes + edge_bytes,
        )

    def _list_items(self, rel: Relationship, direction: str) -> list[RuleItem]:
        """Equation 5: one item per propagated destination property."""
        source = rel.dst if direction == "fwd" else rel.src
        source_concept = self.ontology.concept(source)
        n_props = len(source_concept.properties)
        edge_count = self.stats.rel_card(rel.rel_id)
        return [
            RuleItem(
                rel_id=rel.rel_id,
                rel_type=rel.rel_type,
                direction=direction,
                prop=prop.name,
                benefit=self.workload.af_property(rel, prop.name, n_props),
                cost=edge_count * prop.size_bytes,
            )
            for prop in source_concept.properties.values()
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def items(self) -> list[RuleItem]:
        return list(self._items)

    def items_touching(self, concept: str) -> list[RuleItem]:
        """Items whose relationship has ``concept`` as an endpoint."""
        result = []
        for item in self._items:
            rel = self.ontology.relationship(item.rel_id)
            if rel.touches(concept):
                result.append(item)
        return result

    @property
    def total_benefit(self) -> float:
        """B_NSC: the benefit of applying every rule (Algorithm 5)."""
        return sum(item.benefit for item in self._items)

    @property
    def total_cost(self) -> int:
        """S_NSC - S_DIR: the extra space the full optimization needs."""
        return sum(item.cost for item in self._items)

    def budget_for_fraction(self, fraction: float) -> int:
        """Space budget for a fraction of the NSC space overhead.

        The evaluation "var[ies] the space constraint from S_DIR to
        S_NSC"; a fraction of 1.0 therefore admits every rule.
        """
        if fraction < 0:
            raise OptimizationError("space fraction must be >= 0")
        return int(round(fraction * self.total_cost))

    def one_to_one_rel_ids(self) -> frozenset[str]:
        return frozenset(
            rel.rel_id
            for rel in self.ontology.relationships_of_type(
                RelationshipType.ONE_TO_ONE
            )
        )

    def selection_from_items(
        self, items: list[RuleItem], include_one_to_one: bool = True
    ) -> Selection:
        """Turn selected items into a rule-engine :class:`Selection`."""
        rel_ids: set[str] = set()
        list_props: set[tuple[str, str, str]] = set()
        for item in items:
            if item.prop is None:
                rel_ids.add(item.rel_id)
            else:
                list_props.add((item.rel_id, item.direction, item.prop))
        if include_one_to_one:
            rel_ids |= self.one_to_one_rel_ids()
        return Selection(
            rel_ids=frozenset(rel_ids), list_props=frozenset(list_props)
        )

    def benefit_of(self, items: list[RuleItem]) -> float:
        return sum(item.benefit for item in items)

    def cost_of(self, items: list[RuleItem]) -> int:
        return sum(item.cost for item in items)

    def benefit_ratio(self, items: list[RuleItem]) -> float:
        """BR = B_SC / B_NSC (Section 5.1's quality metric)."""
        total = self.total_benefit
        if total <= 0:
            return 1.0
        return self.benefit_of(items) / total
