"""Schema optimization algorithms (Section 4 of the paper)."""

from repro.optimizer.concept_centric import (
    concept_scores,
    optimize_concept_centric,
)
from repro.optimizer.costmodel import CostBenefitModel, RuleItem
from repro.optimizer.exhaustive import optimal_selection, optimize_exhaustive
from repro.optimizer.knapsack import (
    KnapsackResult,
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
)
from repro.optimizer.nsc import optimize_nsc
from repro.optimizer.pagerank import (
    PageRankResult,
    ontology_pagerank,
    pagerank,
)
from repro.optimizer.pgsg import optimize
from repro.optimizer.relation_centric import optimize_relation_centric
from repro.optimizer.result import OptimizationResult

__all__ = [
    "CostBenefitModel",
    "KnapsackResult",
    "OptimizationResult",
    "PageRankResult",
    "RuleItem",
    "concept_scores",
    "knapsack_exact",
    "optimal_selection",
    "optimize_exhaustive",
    "knapsack_fptas",
    "knapsack_greedy",
    "ontology_pagerank",
    "optimize",
    "optimize_concept_centric",
    "optimize_nsc",
    "optimize_relation_centric",
    "pagerank",
]
