"""Shared result type for the schema-optimization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.costmodel import RuleItem
from repro.rules.base import SchemaState, Selection
from repro.schema.mapping import SchemaMapping
from repro.schema.model import PropertyGraphSchema


@dataclass
class OptimizationResult:
    """Everything an optimizer run produced."""

    algorithm: str
    schema: PropertyGraphSchema
    mapping: SchemaMapping
    state: SchemaState
    selection: Selection
    selected_items: list[RuleItem]
    total_benefit: float
    total_cost: int
    benefit_ratio: float
    space_limit: int | None
    elapsed_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    def summary(self) -> str:
        budget = (
            "unbounded" if self.space_limit is None
            else f"{self.space_limit:,} B"
        )
        return (
            f"{self.algorithm}: BR={self.benefit_ratio:.3f}, "
            f"benefit={self.total_benefit:.1f}, "
            f"cost={self.total_cost:,} B, budget={budget}, "
            f"{len(self.selected_items)} rule applications, "
            f"{self.elapsed_seconds * 1000:.1f} ms"
        )
