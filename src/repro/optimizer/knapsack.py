"""0/1 knapsack solvers for relationship selection (Section 4.2.2).

The paper reduces relationship selection to 0/1 knapsack (Proposition 1)
and adopts an FPTAS.  Three solvers are provided:

* :func:`knapsack_fptas` - benefit-scaling dynamic program over
  ``min-cost-to-reach-benefit`` states.  With scale factor
  ``K = eps * max_benefit / n`` the selected set's benefit is within
  ``(1 - eps)`` of optimal.  The DP rows are numpy-vectorized and exact
  reconstruction uses per-item improvement bitmaps: walking backwards,
  the *latest* item that improved a state is the one the optimal chain
  used, and its predecessor state must have been improved by an earlier
  item - so the chain is recovered without storing the full DP table.
  A ``max_states`` cap bounds memory on large skewed instances; when the
  cap binds, ``K`` grows and the guarantee degrades gracefully (the
  effective epsilon is reported on the result).

* :func:`knapsack_exact` - textbook cost-dimension DP, exponential-free
  but only practical for small integer capacities; used by the tests as
  ground truth.

* :func:`knapsack_greedy` - benefit/cost-ratio greedy (with the classic
  max-single-item fix giving a 1/2 approximation); used in the ablation
  benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.exceptions import OptimizationError


class KnapsackItem(Protocol):
    """Anything with a float ``benefit`` and an int ``cost``."""

    benefit: float
    cost: int


@dataclass
class KnapsackResult:
    """Selected indices plus solver telemetry."""

    indices: list[int]
    benefit: float
    cost: int
    effective_eps: float = 0.0
    states: int = 0

    def select(self, items: Sequence) -> list:
        return [items[i] for i in self.indices]


def _validated(items: Sequence[KnapsackItem], capacity: int) -> None:
    if capacity < 0:
        raise OptimizationError("knapsack capacity must be >= 0")
    for i, item in enumerate(items):
        if item.cost < 0:
            raise OptimizationError(f"item {i} has negative cost")
        if item.benefit < 0:
            raise OptimizationError(f"item {i} has negative benefit")


def knapsack_fptas(
    items: Sequence[KnapsackItem],
    capacity: int,
    eps: float = 0.1,
    max_states: int = 60_000,
) -> KnapsackResult:
    """FPTAS for 0/1 knapsack; returns a (1-eps)-optimal selection."""
    _validated(items, capacity)
    if eps <= 0:
        raise OptimizationError("eps must be > 0")

    free = [i for i, item in enumerate(items)
            if item.cost == 0 and item.benefit > 0]
    priced = [
        (i, item) for i, item in enumerate(items)
        if item.cost > 0 and item.benefit > 0 and item.cost <= capacity
    ]
    if not priced:
        return _result(items, free, effective_eps=0.0, states=0)

    max_benefit = max(item.benefit for _, item in priced)
    n = len(priced)
    scale = eps * max_benefit / n
    if scale <= 0.0:  # subnormal benefits: degrade to unit weights
        scale = max_benefit if max_benefit > 0 else 1.0
    total_scaled = sum(
        int(item.benefit // scale) for _, item in priced
    )
    effective_eps = eps
    if total_scaled > max_states:
        # Cap memory: coarsen the scale; the guarantee loosens to the
        # reported effective epsilon.
        scale *= total_scaled / max_states
        effective_eps = eps * total_scaled / max_states
        total_scaled = sum(
            int(item.benefit // scale) for _, item in priced
        )

    scaled = [max(1, int(item.benefit // scale)) for _, item in priced]
    n_states = sum(scaled) + 1

    INF = np.iinfo(np.int64).max // 4
    dp = np.full(n_states, INF, dtype=np.int64)
    dp[0] = 0
    improved: list[np.ndarray] = []
    for (_, item), sb in zip(priced, scaled):
        # dp[s] = min(dp[s], dp[s - sb] + cost), done in place on the
        # shifted view (INF + cost stays < 2*INF, no overflow).
        candidate = dp[:-sb] + item.cost
        better_tail = candidate < dp[sb:]
        dp[sb:] = np.where(better_tail, candidate, dp[sb:])
        better = np.zeros(n_states, dtype=bool)
        better[sb:] = better_tail
        improved.append(better)

    feasible = np.nonzero(dp <= capacity)[0]
    best_state = int(feasible[-1]) if len(feasible) else 0

    chosen: list[int] = []
    state = best_state
    limit = n  # only items with index < limit may explain the state
    while state > 0:
        found = False
        for idx in range(limit - 1, -1, -1):
            if improved[idx][state]:
                chosen.append(priced[idx][0])
                state -= scaled[idx]
                limit = idx
                found = True
                break
        if not found:  # pragma: no cover - dp[0]=0 guarantees progress
            raise OptimizationError("knapsack reconstruction failed")

    return _result(
        items, free + chosen, effective_eps=effective_eps,
        states=n_states,
    )


def knapsack_exact(
    items: Sequence[KnapsackItem],
    capacity: int,
    max_capacity_states: int = 2_000_000,
) -> KnapsackResult:
    """Exact cost-dimension DP.  Raises when the state space is too big."""
    _validated(items, capacity)
    free = [i for i, item in enumerate(items)
            if item.cost == 0 and item.benefit > 0]
    priced = [
        (i, item) for i, item in enumerate(items)
        if item.cost > 0 and item.benefit > 0 and item.cost <= capacity
    ]
    if not priced:
        return _result(items, free, states=0)

    gcd = 0
    for _, item in priced:
        gcd = math.gcd(gcd, item.cost)
    gcd = math.gcd(gcd, capacity) or 1
    cap = capacity // gcd
    if (cap + 1) * len(priced) > max_capacity_states * 64:
        raise OptimizationError(
            "exact knapsack state space too large; use knapsack_fptas"
        )

    dp = np.zeros(cap + 1, dtype=np.float64)
    improved: list[np.ndarray] = []
    for _, item in priced:
        cost = item.cost // gcd
        shifted = np.full(cap + 1, -np.inf)
        shifted[cost:] = dp[: cap + 1 - cost]
        candidate = shifted + item.benefit
        better = candidate > dp
        dp = np.where(better, candidate, dp)
        improved.append(better)

    state = int(np.argmax(dp))
    chosen: list[int] = []
    limit = len(priced)
    while state > 0:
        found = False
        for idx in range(limit - 1, -1, -1):
            if improved[idx][state]:
                chosen.append(priced[idx][0])
                state -= priced[idx][1].cost // gcd
                limit = idx
                found = True
                break
        if not found:
            break  # remaining capacity unused by any item
    return _result(items, free + chosen, states=cap + 1)


def knapsack_greedy(
    items: Sequence[KnapsackItem], capacity: int
) -> KnapsackResult:
    """Benefit/cost greedy with the best-single-item fallback."""
    _validated(items, capacity)
    free = [i for i, item in enumerate(items)
            if item.cost == 0 and item.benefit > 0]
    priced = [
        (i, item) for i, item in enumerate(items)
        if item.cost > 0 and item.benefit > 0 and item.cost <= capacity
    ]
    ranked = sorted(
        priced, key=lambda pair: (-pair[1].benefit / pair[1].cost, pair[0])
    )
    chosen: list[int] = []
    remaining = capacity
    greedy_benefit = 0.0
    for index, item in ranked:
        if item.cost <= remaining:
            chosen.append(index)
            remaining -= item.cost
            greedy_benefit += item.benefit
    if priced:
        best_index, best_item = max(
            priced, key=lambda pair: pair[1].benefit
        )
        if best_item.benefit > greedy_benefit:
            chosen = [best_index]
    return _result(items, free + chosen, states=0)


def _result(
    items: Sequence[KnapsackItem],
    indices: list[int],
    effective_eps: float = 0.0,
    states: int = 0,
) -> KnapsackResult:
    ordered = sorted(set(indices))
    return KnapsackResult(
        indices=ordered,
        benefit=sum(items[i].benefit for i in ordered),
        cost=sum(items[i].cost for i in ordered),
        effective_eps=effective_eps,
        states=states,
    )
