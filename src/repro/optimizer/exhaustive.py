"""Exhaustive-search baseline for relationship selection.

Section 5.4 of the paper compares against "an exhaustive search
approach, which even failed to produce an optimal schema for MED after
3 hours".  This module provides that baseline: it enumerates every
subset of priced rule applications and returns a truly optimal
selection.  It is exponential in the number of items and guarded by
``max_items``, so it is only usable on small ontologies - which is
exactly the point; ``tests/optimizer/test_exhaustive.py`` uses it as
ground truth for RC's near-optimality.

Reproduces: the exhaustive-search baseline of the Section 5.4 / Table 2
efficiency comparison (``benchmarks/bench_table2_efficiency.py``
reports it timing out past ``max_items`` exactly as the paper's run
did after 3 hours).
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.exceptions import OptimizationError
from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.costmodel import CostBenefitModel, RuleItem
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Thresholds
from repro.rules.engine import transform
from repro.schema.generate import generate_schema

#: Beyond this many priced items the enumeration is rejected (2^24
#: subsets is already ~17M; the paper's MED has well over 100 items,
#: which is why its exhaustive baseline never finished).
DEFAULT_MAX_ITEMS = 22


def optimal_selection(
    items: list[RuleItem],
    capacity: int,
    max_items: int = DEFAULT_MAX_ITEMS,
) -> list[RuleItem]:
    """The benefit-optimal subset of ``items`` within ``capacity``.

    Free beneficial items are always taken; the exponential enumeration
    runs over the priced ones only.
    """
    free = [i for i in items if i.cost == 0 and i.benefit > 0]
    priced = [
        i for i in items
        if i.cost > 0 and i.benefit > 0 and i.cost <= capacity
    ]
    if len(priced) > max_items:
        raise OptimizationError(
            f"exhaustive search over {len(priced)} items "
            f"(> {max_items}) is infeasible; use the RC algorithm"
        )
    best_benefit = -1.0
    best_subset: tuple[RuleItem, ...] = ()
    for size in range(len(priced) + 1):
        for subset in combinations(priced, size):
            cost = sum(i.cost for i in subset)
            if cost > capacity:
                continue
            benefit = sum(i.benefit for i in subset)
            if benefit > best_benefit:
                best_benefit = benefit
                best_subset = subset
    return free + list(best_subset)


def optimize_exhaustive(
    ontology: Ontology,
    stats: DataStatistics,
    space_limit: int,
    workload: WorkloadSummary | None = None,
    thresholds: Thresholds | None = None,
    max_items: int = DEFAULT_MAX_ITEMS,
) -> OptimizationResult:
    """The paper's exhaustive baseline as a full optimizer."""
    started = time.perf_counter()
    thresholds = thresholds or Thresholds()
    workload = workload or WorkloadSummary.uniform(ontology)
    model = CostBenefitModel(ontology, stats, workload, thresholds)
    selected = optimal_selection(model.items, space_limit, max_items)
    selection = model.selection_from_items(selected)
    state = transform(ontology, selection, thresholds)
    schema, mapping = generate_schema(state, name="exhaustive")
    return OptimizationResult(
        algorithm="EXH",
        schema=schema,
        mapping=mapping,
        state=state,
        selection=selection,
        selected_items=selected,
        total_benefit=model.benefit_of(selected),
        total_cost=model.cost_of(selected),
        benefit_ratio=model.benefit_ratio(selected),
        space_limit=space_limit,
        elapsed_seconds=time.perf_counter() - started,
    )
