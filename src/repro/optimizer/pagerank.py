"""OntologyPR: the modified PageRank of Algorithm 6.

Differences from vanilla PageRank, per Section 4.2.1:

* **Unions** - every edge incident to a union concept is rewired to each
  of its member concepts, then the union concept is removed, so its rank
  mass flows to/from the members.
* **Inheritance** - ``isA`` relationships are removed before the power
  iteration; afterwards each concept's score is raised to the highest
  score among its inheritance ancestors (a child inherits its parent's
  centrality).
* **Out-degree** - a reverse edge is added for every remaining
  relationship, making the graph effectively undirected (in- and
  out-degree count equally toward key-concept-ness).

Union concepts do not exist in the modified graph; they are assigned the
maximum score among their members afterwards, so the concept-centric
algorithm can still rank their relationships.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ontology.model import Ontology, RelationshipType


@dataclass
class PageRankResult:
    """Scores per concept plus power-iteration telemetry."""

    scores: dict[str, float]
    iterations: int

    def __getitem__(self, concept: str) -> float:
        return self.scores[concept]


def pagerank_kernel(
    n: int,
    flat_src: list[int],
    flat_dst: list[int],
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[list[float], int]:
    """Power-iteration PageRank over flat CSR-style edge arrays.

    ``flat_src`` / ``flat_dst`` are parallel node-index lists (one
    entry per directed edge).  Ranks live in dense lists indexed by
    node, so each power iteration is one zip-driven pass over the edge
    arrays plus a few list comprehensions - no dict hashing anywhere
    on the hot path.  Dangling nodes distribute their mass uniformly,
    the classic fix.  Returns (scores by node index, iterations).
    """
    if n == 0:
        return [], 0
    out_degree = [0] * n
    for src in flat_src:
        out_degree[src] += 1
    dangling = [i for i in range(n) if out_degree[i] == 0]
    inv_degree = [1.0 / d if d else 0.0 for d in out_degree]
    rank = [1.0 / n] * n
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dangling_mass = sum(rank[i] for i in dangling)
        shares = [r * inv for r, inv in zip(rank, inv_degree)]
        incoming = [0.0] * n
        for src, dst in zip(flat_src, flat_dst):
            incoming[dst] += shares[src]
        base = (1.0 - damping) / n + damping * dangling_mass / n
        new_rank = [base + damping * mass for mass in incoming]
        delta = sum(
            abs(new - old) for new, old in zip(new_rank, rank)
        )
        rank = new_rank
        if delta < tol:
            break
    return rank, iterations


def pagerank(
    adjacency: dict[str, list[str]],
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 500,
) -> tuple[dict[str, float], int]:
    """Power-iteration PageRank over an adjacency mapping.

    Thin wrapper over :func:`pagerank_kernel`: nodes are indexed once
    (sorted order), the adjacency lists are flattened into parallel
    source/target index arrays, and the kernel iterates those flat
    arrays.  Returns (scores, iterations).
    """
    nodes = sorted(adjacency)
    n = len(nodes)
    if n == 0:
        return {}, 0
    index = {node: i for i, node in enumerate(nodes)}
    flat_src: list[int] = []
    flat_dst: list[int] = []
    for node in nodes:
        i = index[node]
        for neighbor in adjacency[node]:
            flat_src.append(i)
            flat_dst.append(index[neighbor])
    rank, iterations = pagerank_kernel(
        n, flat_src, flat_dst, damping, tol, max_iterations
    )
    return dict(zip(nodes, rank)), iterations


def ontology_pagerank(
    ontology: Ontology,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 500,
) -> PageRankResult:
    """Algorithm 6: centrality scores for every concept of an ontology."""
    union_concepts = ontology.union_concepts()
    members: dict[str, list[str]] = {
        u: ontology.members_of(u) for u in union_concepts
    }

    # Build the modified edge list: drop inheritance, rewire unions,
    # then add a reverse edge per remaining relationship.
    edges: list[tuple[str, str]] = []
    for rel in ontology.iter_relationships():
        if rel.rel_type is RelationshipType.INHERITANCE:
            continue
        if rel.rel_type is RelationshipType.UNION:
            continue  # the unionOf edge itself carries no mass
        edges.append((rel.src, rel.dst))

    def expand(concept: str) -> list[str]:
        """Replace a union concept by its members (transitively)."""
        if concept not in union_concepts:
            return [concept]
        expanded: list[str] = []
        for member in members[concept]:
            expanded.extend(expand(member))
        return expanded

    adjacency: dict[str, list[str]] = {
        c: []
        for c in ontology.concepts
        if c not in union_concepts
    }
    for src, dst in edges:
        for s in expand(src):
            for d in expand(dst):
                if s == d:
                    continue
                adjacency[s].append(d)
                adjacency[d].append(s)  # reverse edge (out-degree rule)

    scores, iterations = pagerank(adjacency, damping, tol, max_iterations)

    # Re-attach inheritance: a child inherits the best ancestor score.
    final = dict(scores)

    def ancestor_max(concept: str, seen: frozenset[str]) -> float:
        best = final.get(concept, 0.0)
        for parent in ontology.parents_of(concept):
            if parent in seen or parent in union_concepts:
                continue
            best = max(
                best, ancestor_max(parent, seen | {concept})
            )
        return best

    for concept in ontology.concepts:
        if concept in union_concepts:
            continue
        final[concept] = ancestor_max(concept, frozenset())

    # Union concepts take the best member score (they were dissolved).
    for union_concept in union_concepts:
        member_scores = [
            final.get(m, 0.0) for m in expand(union_concept)
        ]
        final[union_concept] = max(member_scores) if member_scores else 0.0

    return PageRankResult(final, iterations)
