"""Algorithm 8: the relation-centric (RC) optimization algorithm.

Every rule application is priced by the cost-benefit model (Equations
3-5) and the near-optimal subset under the space limit is selected with
the knapsack FPTAS, giving a *global* ordering over relationships (the
paper's motivation for RC over CC).

Reproduces: the RC series of Figures 8 and 9 (benefit ratio vs. space
budget; ``benchmarks/bench_fig8_space_med.py`` /
``benchmarks/bench_fig9_space_fin.py``), RC's rows of Table 2
(``benchmarks/bench_table2_efficiency.py``), and the Figure 10
sensitivity to the (theta1, theta2) Jaccard thresholds
(``benchmarks/bench_fig10_jaccard_fin.py``).
"""

from __future__ import annotations

import time

from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.costmodel import CostBenefitModel
from repro.optimizer.knapsack import knapsack_fptas
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Thresholds
from repro.rules.engine import transform
from repro.schema.generate import generate_schema


def optimize_relation_centric(
    ontology: Ontology,
    stats: DataStatistics,
    space_limit: int,
    workload: WorkloadSummary | None = None,
    thresholds: Thresholds | None = None,
    eps: float = 0.1,
) -> OptimizationResult:
    """Run the relation-centric algorithm under ``space_limit`` bytes."""
    started = time.perf_counter()
    thresholds = thresholds or Thresholds()
    workload = workload or WorkloadSummary.uniform(ontology)
    model = CostBenefitModel(ontology, stats, workload, thresholds)

    items = model.items
    result = knapsack_fptas(items, space_limit, eps=eps)
    selected = result.select(items)

    selection = model.selection_from_items(selected)
    state = transform(ontology, selection, thresholds)
    schema, mapping = generate_schema(state, name="rc")
    elapsed = time.perf_counter() - started
    return OptimizationResult(
        algorithm="RC",
        schema=schema,
        mapping=mapping,
        state=state,
        selection=selection,
        selected_items=selected,
        total_benefit=model.benefit_of(selected),
        total_cost=model.cost_of(selected),
        benefit_ratio=model.benefit_ratio(selected),
        space_limit=space_limit,
        elapsed_seconds=elapsed,
        extras={
            "knapsack_states": result.states,
            "knapsack_effective_eps": result.effective_eps,
        },
    )
