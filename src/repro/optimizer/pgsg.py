"""PGSG: the property-graph-schema generator facade.

Section 5.1: *"PGSG chooses the property graph schema with a higher total
benefit score from relation-centric (RC) and concept-centric (CC)
algorithms."*  :func:`optimize` runs both and returns the winner (ties go
to RC, which carries the near-optimality guarantee); both candidates stay
available on the result for inspection.

Reproduces: the schemas behind the Figure 11 microbenchmark and the
Figure 12 mixed-workload comparison (PGSG is the optimizer the paper
evaluates end to end; ``benchmarks/bench_fig11_microbench.py`` and
``benchmarks/bench_fig12_workload.py`` drive it).
"""

from __future__ import annotations

from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.concept_centric import optimize_concept_centric
from repro.optimizer.nsc import optimize_nsc
from repro.optimizer.relation_centric import optimize_relation_centric
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Thresholds


def optimize(
    ontology: Ontology,
    stats: DataStatistics,
    space_limit: int | None = None,
    workload: WorkloadSummary | None = None,
    thresholds: Thresholds | None = None,
    eps: float = 0.1,
) -> OptimizationResult:
    """Produce the best schema under ``space_limit`` bytes.

    ``space_limit=None`` means no constraint (Algorithm 5).
    """
    if space_limit is None:
        return optimize_nsc(ontology, stats, workload, thresholds)
    rc = optimize_relation_centric(
        ontology, stats, space_limit, workload, thresholds, eps=eps
    )
    cc = optimize_concept_centric(
        ontology, stats, space_limit, workload, thresholds
    )
    winner = rc if rc.total_benefit >= cc.total_benefit else cc
    winner.extras["rc_benefit"] = rc.total_benefit
    winner.extras["cc_benefit"] = cc.total_benefit
    winner.extras["candidates"] = {"RC": rc, "CC": cc}
    return winner
