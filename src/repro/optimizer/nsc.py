"""Algorithm 5: optimization without space constraints (NSC).

Applies every rule to a fixpoint.  Theorem 3 guarantees the produced
schema is unique regardless of rule order; the space-constrained
algorithms measure their quality against this schema's total benefit
(``BR = B_SC / B_NSC``).

Reproduces: the benefit/space ceilings of Figures 8 and 9 (the
``BR = 1`` asymptote and the space axis normalization,
``benchmarks/bench_fig8_space_med.py`` /
``benchmarks/bench_fig9_space_fin.py``) and the Figures 4-7 example
transformations shown by ``examples/quickstart.py``.
"""

from __future__ import annotations

import time

from repro.ontology.model import Ontology
from repro.ontology.stats import DataStatistics
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.costmodel import CostBenefitModel
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Selection, Thresholds
from repro.rules.engine import transform
from repro.schema.generate import generate_schema


def optimize_nsc(
    ontology: Ontology,
    stats: DataStatistics | None = None,
    workload: WorkloadSummary | None = None,
    thresholds: Thresholds | None = None,
) -> OptimizationResult:
    """Run Algorithm 5 and price the outcome with the cost model.

    ``stats`` is only needed to report benefit/cost numbers; when omitted,
    unit cardinalities are assumed.
    """
    started = time.perf_counter()
    thresholds = thresholds or Thresholds()
    if stats is None:
        from repro.ontology.stats import synthesize_statistics

        stats = synthesize_statistics(ontology, base_cardinality=1)
    model = CostBenefitModel(ontology, stats, workload, thresholds)
    state = transform(ontology, Selection.all(), thresholds)
    schema, mapping = generate_schema(state, name="nsc")
    elapsed = time.perf_counter() - started
    return OptimizationResult(
        algorithm="NSC",
        schema=schema,
        mapping=mapping,
        state=state,
        selection=Selection.all(),
        selected_items=model.items,
        total_benefit=model.total_benefit,
        total_cost=model.total_cost,
        benefit_ratio=1.0,
        space_limit=None,
        elapsed_seconds=elapsed,
    )
