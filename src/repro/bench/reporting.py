"""Plain-text experiment tables (paper-figure style output)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A titled table with aligned text rendering."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(value))
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(v.ljust(widths[i]) for i, v in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = [",".join(self.headers)]
        for row in self.rows:
            out.append(",".join(_fmt(v) for v in row))
        return "\n".join(out)

    def column(self, header: str) -> list[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    return str(value)


def speedup(baseline: float, optimized: float) -> float:
    """Baseline/optimized ratio; 0-safe."""
    if optimized <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / optimized
