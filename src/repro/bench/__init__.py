"""Experiment harness reproducing every table and figure of the paper."""

from repro.bench.harness import (
    BACKENDS,
    JACCARD_PAIRS,
    MICROBENCH_BUDGET_FRACTION,
    MICROBENCH_THRESHOLDS,
    Pipeline,
    SPACE_FRACTIONS,
    build_pipeline,
    run_efficiency,
    run_jaccard_sweep,
    run_knapsack_ablation,
    run_microbenchmark,
    run_motivating,
    run_space_sweep,
    run_workload_experiment,
)
from repro.bench.reporting import ExperimentTable, speedup

__all__ = [
    "BACKENDS",
    "ExperimentTable",
    "JACCARD_PAIRS",
    "MICROBENCH_BUDGET_FRACTION",
    "MICROBENCH_THRESHOLDS",
    "Pipeline",
    "SPACE_FRACTIONS",
    "build_pipeline",
    "run_efficiency",
    "run_jaccard_sweep",
    "run_knapsack_ablation",
    "run_microbenchmark",
    "run_motivating",
    "run_space_sweep",
    "run_workload_experiment",
    "speedup",
]
