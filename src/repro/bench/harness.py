"""Experiment drivers: one function per paper table/figure.

Each ``run_*`` function returns one or more
:class:`~repro.bench.reporting.ExperimentTable` objects whose rows are
the series the paper plots.  The benchmark scripts under ``benchmarks/``
are thin wrappers that execute these drivers and print the tables; see
EXPERIMENTS.md for measured-vs-paper commentary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.reporting import ExperimentTable, speedup
from repro.data.loader import load_direct, load_optimized
from repro.data.logical import LogicalDataset
from repro.datasets.base import Dataset
from repro.datasets.cache import graph_cache_key, memoized_graph
from repro.graphdb.api import Database
from repro.graphdb.backends import JANUSGRAPH_LIKE, NEO4J_LIKE
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query.ast import Query
from repro.ontology.workload import WorkloadSummary
from repro.optimizer.concept_centric import optimize_concept_centric
from repro.optimizer.costmodel import CostBenefitModel
from repro.optimizer.knapsack import (
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
)
from repro.optimizer.pgsg import optimize
from repro.optimizer.relation_centric import optimize_relation_centric
from repro.optimizer.result import OptimizationResult
from repro.rules.base import Thresholds
from repro.workload.generator import mixed_workload
from repro.workload.queries import query_class
from repro.workload.rewriter import QueryRewriter
from repro.workload.runner import run_queries

#: Backends used throughout Section 5.3.
BACKENDS = (JANUSGRAPH_LIKE, NEO4J_LIKE)

#: The space fractions of Figures 8 and 9.
SPACE_FRACTIONS = (
    0.0001, 0.001, 0.01, 0.025, 0.04, 0.10, 0.15, 0.20, 0.25,
    0.50, 0.75, 1.00,
)

#: The Jaccard threshold pairs of Figure 10.
JACCARD_PAIRS = ((0.9, 0.1), (0.66, 0.33), (0.6, 0.4), (0.5, 0.5))

#: Microbenchmark parameters (Section 5.3): theta1=66%, theta2=33%,
#: space constraint 0.5 * (S_NSC - S_DIR).
MICROBENCH_THRESHOLDS = Thresholds(0.66, 0.33)
MICROBENCH_BUDGET_FRACTION = 0.5


# ----------------------------------------------------------------------
# Pipeline: dataset -> optimized schema -> DIR/OPT graphs -> rewriter
# ----------------------------------------------------------------------
@dataclass
class Pipeline:
    """Everything needed to run queries against DIR and OPT graphs."""

    dataset: Dataset
    result: OptimizationResult
    #: ``None`` when both graphs came out of the snapshot cache (the
    #: logical instance data is only materialized on a cache miss).
    logical: LogicalDataset | None
    dir_graph: PropertyGraph
    opt_graph: PropertyGraph
    rewriter: QueryRewriter
    rewritten: dict[str, Query]

    def database(self, which: str = "dir", profile=NEO4J_LIKE) -> Database:
        """A driver :class:`~repro.graphdb.api.Database` over one of
        the pipeline's graphs (``"dir"`` or ``"opt"``) - the handle
        demo code and benchmarks session queries through."""
        if which not in ("dir", "opt"):
            raise ValueError(f"unknown pipeline graph {which!r}")
        graph = self.dir_graph if which == "dir" else self.opt_graph
        return Database(graph, profile=profile)


def build_pipeline(
    dataset: Dataset,
    budget_fraction: float = MICROBENCH_BUDGET_FRACTION,
    thresholds: Thresholds = MICROBENCH_THRESHOLDS,
    workload: WorkloadSummary | None = None,
    scale: float = 1.0,
    cache_dir: str | Path | None = None,
) -> Pipeline:
    """Optimize, load both graphs, and rewrite the benchmark queries.

    ``cache_dir`` (or the ``REPRO_SNAPSHOT_CACHE`` environment
    variable) memoizes the generated DIR/OPT graphs as binary
    snapshots keyed by every generation input, so repeat runs skip
    data generation and graph loading entirely.  The cache is only
    consulted for the default query-driven workload - an explicit
    ``workload`` changes the optimized schema, which the key does not
    cover.
    """
    custom_workload = workload is not None
    if workload is None:
        workload = dataset.query_workload()
    model = CostBenefitModel(
        dataset.ontology, dataset.stats, workload, thresholds
    )
    budget = model.budget_for_fraction(budget_fraction)
    result = optimize(
        dataset.ontology, dataset.stats, budget, workload, thresholds
    )

    logical: LogicalDataset | None = None

    def get_logical() -> LogicalDataset:
        nonlocal logical
        if logical is None:
            logical = dataset.logical(scale=scale)
        return logical

    def build_dir() -> PropertyGraph:
        return load_direct(get_logical(), name=f"{dataset.name}-DIR")

    def build_opt() -> PropertyGraph:
        return load_optimized(
            get_logical(), result.mapping, name=f"{dataset.name}-OPT"
        )

    if custom_workload:
        # A custom workload changes the optimized schema in ways the
        # cache key does not cover: never read or write the cache.
        dir_graph = build_dir()
        opt_graph = build_opt()
    else:
        dir_graph = memoized_graph(
            graph_cache_key(dataset, "dir", scale), cache_dir, build_dir
        )
        opt_graph = memoized_graph(
            graph_cache_key(
                dataset, "opt", scale, budget_fraction, thresholds
            ),
            cache_dir,
            build_opt,
        )
    # Pipeline graphs are read-only from here on (benchmarks, demos,
    # workload runs): freeze both so query expansion runs over the
    # immutable CSR view instead of the mutable dict adjacency.  Any
    # later mutation invalidates the view and falls back seamlessly.
    dir_graph.freeze()
    opt_graph.freeze()
    rewriter = QueryRewriter(dataset.ontology, result.mapping)
    rewritten = {
        qid: rewriter.rewrite(text)
        for qid, text in dataset.queries.items()
    }
    return Pipeline(
        dataset=dataset,
        result=result,
        logical=logical,
        dir_graph=dir_graph,
        opt_graph=opt_graph,
        rewriter=rewriter,
        rewritten=rewritten,
    )


# ----------------------------------------------------------------------
# Figures 8 & 9: benefit ratio vs space constraint
# ----------------------------------------------------------------------
def run_space_sweep(
    dataset: Dataset,
    fractions: tuple[float, ...] = SPACE_FRACTIONS,
    workload_kinds: tuple[str, ...] = ("uniform", "zipf"),
    thresholds: Thresholds = MICROBENCH_THRESHOLDS,
) -> ExperimentTable:
    """Figure 8 (MED) / Figure 9 (FIN): BR for RC and CC vs space."""
    table = ExperimentTable(
        title=f"Benefit Ratio vs Space Constraint ({dataset.name})",
        headers=["workload", "space", "RC BR", "CC BR"],
    )
    for kind in workload_kinds:
        workload = dataset.workload(kind)
        model = CostBenefitModel(
            dataset.ontology, dataset.stats, workload, thresholds
        )
        for fraction in fractions:
            budget = model.budget_for_fraction(fraction)
            rc = optimize_relation_centric(
                dataset.ontology, dataset.stats, budget, workload,
                thresholds,
            )
            cc = optimize_concept_centric(
                dataset.ontology, dataset.stats, budget, workload,
                thresholds,
            )
            table.add_row(
                kind, f"{fraction:.4%}".rstrip("0").rstrip("."),
                round(rc.benefit_ratio, 4), round(cc.benefit_ratio, 4),
            )
    table.add_note(
        "space given as a fraction of the NSC space overhead "
        "(S_NSC - S_DIR); BR = B_SC / B_NSC"
    )
    return table


# ----------------------------------------------------------------------
# Figure 10: benefit ratio vs Jaccard thresholds
# ----------------------------------------------------------------------
def run_jaccard_sweep(
    dataset: Dataset,
    pairs: tuple[tuple[float, float], ...] = JACCARD_PAIRS,
    workload_kinds: tuple[str, ...] = ("uniform", "zipf"),
    budget_fraction: float = 0.5,
) -> ExperimentTable:
    """Figure 10: BR under varying (theta1, theta2), FIN in the paper."""
    table = ExperimentTable(
        title=f"Benefit Ratio vs Jaccard Thresholds ({dataset.name})",
        headers=["workload", "(theta1, theta2)", "RC BR", "CC BR"],
    )
    for kind in workload_kinds:
        workload = dataset.workload(kind)
        for theta1, theta2 in pairs:
            thresholds = Thresholds(theta1, theta2)
            model = CostBenefitModel(
                dataset.ontology, dataset.stats, workload, thresholds
            )
            # The paper sets the budget to (S_NSC - S_DIR) / 2 *under
            # each threshold pair* because rule costs change with theta.
            budget = model.budget_for_fraction(budget_fraction)
            rc = optimize_relation_centric(
                dataset.ontology, dataset.stats, budget, workload,
                thresholds,
            )
            cc = optimize_concept_centric(
                dataset.ontology, dataset.stats, budget, workload,
                thresholds,
            )
            table.add_row(
                kind, f"({theta1}, {theta2})",
                round(rc.benefit_ratio, 4), round(cc.benefit_ratio, 4),
            )
    return table


# ----------------------------------------------------------------------
# Figure 11: microbenchmark
# ----------------------------------------------------------------------
def run_microbenchmark(
    datasets: list[Dataset],
    scale: float = 1.0,
) -> ExperimentTable:
    """Figure 11: per-query latency, DIR vs OPT, on both backends."""
    table = ExperimentTable(
        title="Microbenchmark: per-query latency (ms, simulated)",
        headers=[
            "query", "class", "backend", "DIR ms", "OPT ms", "speedup",
        ],
    )
    for dataset in datasets:
        pipeline = build_pipeline(dataset, scale=scale)
        for qid in sorted(dataset.queries, key=_query_order):
            dir_query = dataset.queries[qid]
            opt_query = pipeline.rewritten[qid]
            for profile in BACKENDS:
                dir_run = run_queries(
                    pipeline.dir_graph, profile, [(qid, dir_query)]
                ).runs[0]
                opt_run = run_queries(
                    pipeline.opt_graph, profile, [(qid, opt_query)]
                ).runs[0]
                table.add_row(
                    f"{qid}({dataset.name})",
                    query_class(qid),
                    profile.name,
                    round(dir_run.latency_ms, 3),
                    round(opt_run.latency_ms, 3),
                    round(speedup(dir_run.latency_ms,
                                  opt_run.latency_ms), 2),
                )
    table.add_note(
        "OPT produced with theta1=0.66, theta2=0.33 and space budget "
        "0.5*(S_NSC - S_DIR), as in the paper"
    )
    return table


# ----------------------------------------------------------------------
# Figure 12: total workload latency
# ----------------------------------------------------------------------
def run_workload_experiment(
    datasets: list[Dataset],
    scale: float = 1.0,
    size: int = 15,
    seed: int = 5,
) -> ExperimentTable:
    """Figure 12: 15-query Zipf workload, DIRECT vs OPT, both backends."""
    table = ExperimentTable(
        title="Total query latency, mixed Zipf workload (ms, simulated)",
        headers=[
            "dataset", "backend", "DIRECT ms", "OPT ms", "speedup",
        ],
    )
    for dataset in datasets:
        pipeline = build_pipeline(dataset, scale=scale)
        workload = mixed_workload(dataset, size=size, seed=seed)
        dir_queries = [(wq.qid, wq.text) for wq in workload]
        opt_queries = [
            (wq.qid, pipeline.rewritten[wq.qid]) for wq in workload
        ]
        for profile in BACKENDS:
            dir_report = run_queries(
                pipeline.dir_graph, profile, dir_queries
            )
            opt_report = run_queries(
                pipeline.opt_graph, profile, opt_queries
            )
            table.add_row(
                dataset.name,
                profile.name,
                round(dir_report.total_latency_ms, 1),
                round(opt_report.total_latency_ms, 1),
                round(
                    speedup(
                        dir_report.total_latency_ms,
                        opt_report.total_latency_ms,
                    ),
                    2,
                ),
            )
    return table


# ----------------------------------------------------------------------
# Table 2: optimizer efficiency
# ----------------------------------------------------------------------
def run_efficiency(
    datasets: list[Dataset],
    fractions: tuple[float, ...] = (0.25, 0.50, 0.75),
    repeats: int = 3,
) -> ExperimentTable:
    """Table 2: RC and CC optimization time at several space budgets."""
    table = ExperimentTable(
        title="Efficiency of RC & CC (ms)",
        headers=["dataset", "space", "RC ms", "CC ms"],
    )
    for dataset in datasets:
        workload = dataset.workload("zipf")
        model = CostBenefitModel(
            dataset.ontology, dataset.stats, workload,
            MICROBENCH_THRESHOLDS,
        )
        for fraction in fractions:
            budget = model.budget_for_fraction(fraction)
            rc_ms = _best_time(
                lambda: optimize_relation_centric(
                    dataset.ontology, dataset.stats, budget, workload,
                    MICROBENCH_THRESHOLDS,
                ),
                repeats,
            )
            cc_ms = _best_time(
                lambda: optimize_concept_centric(
                    dataset.ontology, dataset.stats, budget, workload,
                    MICROBENCH_THRESHOLDS,
                ),
                repeats,
            )
            table.add_row(
                dataset.name, f"{fraction:.0%}",
                round(rc_ms, 1), round(cc_ms, 1),
            )
    return table


# ----------------------------------------------------------------------
# Motivating examples (Section 1, Figure 1)
# ----------------------------------------------------------------------
def run_motivating(scale: float = 1.0) -> ExperimentTable:
    """Examples 1 & 2: pattern matching and aggregation on Figure 1."""
    from repro.datasets.med import build_med

    dataset = build_med()
    pipeline = build_pipeline(dataset, scale=scale)
    table = ExperimentTable(
        title="Motivating examples (Figure 1, ms simulated, neo4j-like)",
        headers=["example", "query", "PG1 (direct) ms", "PG2 (opt) ms",
                 "speedup"],
    )
    examples = {
        "Example 1 (pattern)": "Q2",
        "Example 2 (aggregation)": "Q10",
    }
    for name, qid in examples.items():
        dir_run = run_queries(
            pipeline.dir_graph, NEO4J_LIKE, [(qid, dataset.queries[qid])]
        ).runs[0]
        opt_run = run_queries(
            pipeline.opt_graph, NEO4J_LIKE,
            [(qid, pipeline.rewritten[qid])],
        ).runs[0]
        table.add_row(
            name, qid,
            round(dir_run.latency_ms, 3), round(opt_run.latency_ms, 3),
            round(speedup(dir_run.latency_ms, opt_run.latency_ms), 2),
        )
    return table


# ----------------------------------------------------------------------
# Ablation: knapsack solver choice (design-choice study)
# ----------------------------------------------------------------------
def run_knapsack_ablation(
    dataset: Dataset,
    fractions: tuple[float, ...] = (0.05, 0.10, 0.25, 0.50),
) -> ExperimentTable:
    """Compare FPTAS / greedy / exact selection quality for RC."""
    workload = dataset.workload("zipf")
    model = CostBenefitModel(
        dataset.ontology, dataset.stats, workload, MICROBENCH_THRESHOLDS
    )
    items = model.items
    table = ExperimentTable(
        title=f"Knapsack ablation ({dataset.name})",
        headers=["space", "FPTAS BR", "greedy BR", "exact BR"],
    )
    for fraction in fractions:
        budget = model.budget_for_fraction(fraction)
        fptas = knapsack_fptas(items, budget, eps=0.1)
        greedy = knapsack_greedy(items, budget)
        try:
            exact = knapsack_exact(items, budget)
            exact_br = model.benefit_ratio(exact.select(items))
        except Exception:
            exact_br = float("nan")
        table.add_row(
            f"{fraction:.0%}",
            round(model.benefit_ratio(fptas.select(items)), 4),
            round(model.benefit_ratio(greedy.select(items)), 4),
            round(exact_br, 4) if exact_br == exact_br else "n/a",
        )
    return table


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _best_time(fn, repeats: int) -> float:
    """Best-of-N wall time in milliseconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def _query_order(qid: str) -> int:
    return int(qid.lstrip("Q"))
