"""repro: ontology-driven property graph schema optimization.

A from-scratch reproduction of *"Property Graph Schema Optimization for
Domain-Specific Knowledge Graphs"* (Lei et al., ICDE 2021), including:

* the ontology model, relationship rules and schema optimizers
  (:mod:`repro.ontology`, :mod:`repro.rules`, :mod:`repro.optimizer`,
  :mod:`repro.schema`);
* an instrumented in-memory property-graph engine with a Cypher-subset
  query stack and simulated Neo4j-like / JanusGraph-like backend cost
  profiles (:mod:`repro.graphdb`);
* synthetic MED / FIN datasets matching the paper's published ontology
  statistics, data loaders and an automatic DIR -> OPT query rewriter
  (:mod:`repro.datasets`, :mod:`repro.data`, :mod:`repro.workload`);
* experiment drivers regenerating every table and figure of the
  evaluation section (:mod:`repro.bench`).

Quickstart (schema optimization)::

    from repro.ontology.samples import figure2_medical_ontology
    from repro.schema import optimize_schema_nsc, to_cypher_ddl

    schema, mapping = optimize_schema_nsc(figure2_medical_ontology())
    print(to_cypher_ddl(schema))

Quickstart (graph database driver, see :mod:`repro.graphdb.api`)::

    from repro import connect

    with connect("./data") as db, db.session() as session:
        with session.begin_tx() as tx:
            vid = tx.add_vertex("Drug", {"name": "aspirin"})
            tx.commit()
        record = session.run(
            "MATCH (d:Drug {name: $name}) RETURN d.name AS name",
            name="aspirin",
        ).single()
"""

__version__ = "1.0.0"

from repro.graphdb.api import connect
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology, RelationshipType
from repro.optimizer.pgsg import optimize
from repro.rules.base import Thresholds
from repro.schema.generate import direct_schema, optimize_schema_nsc

__all__ = [
    "Ontology",
    "OntologyBuilder",
    "RelationshipType",
    "Thresholds",
    "connect",
    "direct_schema",
    "optimize",
    "optimize_schema_nsc",
    "__version__",
]
