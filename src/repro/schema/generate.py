"""Generate a :class:`PropertyGraphSchema` + mapping from a rule-engine state.

This is the ``generatePGS`` step of Algorithms 5, 7 and 8.
"""

from __future__ import annotations

from repro.ontology.model import Ontology
from repro.rules.base import SchemaState, Selection, Thresholds
from repro.rules.engine import transform
from repro.schema.mapping import SchemaMapping
from repro.schema.model import (
    EdgeSchema,
    PropertyGraphSchema,
    PropertySchema,
    VertexSchema,
)


def generate_schema(
    state: SchemaState, name: str = "pgs"
) -> tuple[PropertyGraphSchema, SchemaMapping]:
    """Convert a final rule-engine state into a schema and its mapping."""
    mapping = SchemaMapping(state.ontology, state)
    schema = PropertyGraphSchema(name)
    for key in sorted(state.nodes):
        node = state.nodes[key]
        properties = {
            prop.name: PropertySchema(prop.name, prop.data_type, prop.is_list)
            for prop in node.properties.values()
        }
        extra = mapping.labels_of_node(key) - {key}
        schema.add_vertex_schema(
            VertexSchema(key, frozenset(extra), properties)
        )
    seen: set[tuple[str, str, str, str]] = set()
    for edge in sorted(
        state.edges, key=lambda e: (e.src, e.dst, e.label, e.origin_rel)
    ):
        dedupe_key = (edge.src, edge.dst, edge.label, edge.origin_rel)
        if dedupe_key in seen:
            continue
        seen.add(dedupe_key)
        schema.add_edge_schema(
            EdgeSchema(edge.src, edge.dst, edge.label, edge.rel_type,
                       edge.origin_rel)
        )
    return schema, mapping


def direct_schema(
    ontology: Ontology, name: str = "direct"
) -> tuple[PropertyGraphSchema, SchemaMapping]:
    """The DIR baseline: one vertex type per concept, one edge per rel."""
    state = SchemaState(ontology)
    return generate_schema(state, name)


def optimize_schema_nsc(
    ontology: Ontology,
    thresholds: Thresholds | None = None,
    name: str = "nsc",
) -> tuple[PropertyGraphSchema, SchemaMapping]:
    """Algorithm 5: full optimization without space constraints."""
    state = transform(ontology, Selection.all(), thresholds)
    return generate_schema(state, name)
