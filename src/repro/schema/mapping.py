"""Schema mapping: the trace from ontology to optimized schema.

The :class:`SchemaMapping` records everything downstream consumers need:

* the **data loader** materializes an OPT property graph from logical
  instances by merging along collapsed relationships and attaching
  replicated list properties;
* the **query rewriter** turns a query written against the direct schema
  into the equivalent query over the optimized schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.exceptions import SchemaError
from repro.ontology.model import Ontology, RelationshipType
from repro.rules.base import Provenance, SchemaState


class CollapseKind(Enum):
    """Why a relationship's edge disappeared from the schema."""

    UNION = "union"             # member merged with its union twin
    INHERIT_UP = "inherit_up"   # child instances merged into parent twins
    INHERIT_DOWN = "inherit_down"  # parent twins merged into child instances
    MERGE_1_1 = "merge_1_1"     # 1:1 partners merged into one vertex


@dataclass(frozen=True)
class Replication:
    """One replicated list property on the optimized schema."""

    rel_id: str
    owner_node: str          # vertex-schema label holding the list
    source_concept: str      # concept the values come from
    source_property: str     # the original property name
    list_name: str           # the list property's name on the owner
    direction: str = "fwd"   # which endpoint of rel_id owns the list


class SchemaMapping:
    """Query API over the final :class:`SchemaState`."""

    def __init__(self, ontology: Ontology, state: SchemaState):
        self.ontology = ontology
        self._state = state
        self.collapsed: dict[str, CollapseKind] = {}
        self.node_labels: dict[str, frozenset[str]] = {}
        self.replications: list[Replication] = []
        self._component: dict[str, str] = {}
        self._build_collapsed()
        self._build_labels()
        self._build_replications()
        self._build_components()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_collapsed(self) -> None:
        thresholds = self._state.thresholds
        for rel_id in self._state.consumed:
            rel = self.ontology.relationship(rel_id)
            if rel.rel_type is RelationshipType.UNION:
                kind = CollapseKind.UNION
            elif rel.rel_type is RelationshipType.ONE_TO_ONE:
                kind = CollapseKind.MERGE_1_1
            elif rel.rel_type is RelationshipType.INHERITANCE:
                js = self._state.jaccard[rel_id]
                if js > thresholds.theta1:
                    kind = CollapseKind.INHERIT_UP
                else:
                    kind = CollapseKind.INHERIT_DOWN
            else:  # pragma: no cover - only structural/1:1 rels consume
                raise SchemaError(
                    f"unexpected consumed relationship {rel_id}"
                )
            self.collapsed[rel_id] = kind

    def _build_labels(self) -> None:
        labels: dict[str, set[str]] = {
            key: {key} for key in self._state.nodes
        }
        for concept in self.ontology.concepts:
            for key in self._state.resolve(concept):
                labels[key].add(concept)
        self.node_labels = {
            key: frozenset(values) for key, values in labels.items()
        }

    def _build_replications(self) -> None:
        for key, node in self._state.nodes.items():
            for prop in node.properties.values():
                if prop.provenance is not Provenance.REPLICATED:
                    continue
                if prop.via_rel is None:  # pragma: no cover - guarded
                    continue
                self.replications.append(
                    Replication(
                        rel_id=prop.via_rel,
                        owner_node=key,
                        source_concept=prop.origin_concept,
                        source_property=prop.origin_name,
                        list_name=prop.name,
                        direction=prop.via_direction or "fwd",
                    )
                )

    def _build_components(self) -> None:
        """Union-find over concepts along collapsed relationships.

        Instances merge into one vertex exactly along collapsed links,
        so two concepts can share vertices only inside one component.
        The rewriter uses this to detect ambiguous list properties.
        """
        parent = {c: c for c in self.ontology.concepts}

        def find(c: str) -> str:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        for rel_id in self.collapsed:
            rel = self.ontology.relationship(rel_id)
            ra, rb = find(rel.src), find(rel.dst)
            if ra != rb:
                parent[rb] = ra
        self._component = {c: find(c) for c in self.ontology.concepts}

    # ------------------------------------------------------------------
    # Queries used by the loader and the rewriter
    # ------------------------------------------------------------------
    def component_of(self, concept: str) -> str:
        """Representative of the concept's vertex-sharing component."""
        try:
            return self._component[concept]
        except KeyError:
            raise SchemaError(f"unknown concept {concept!r}") from None

    def same_component(self, concept_a: str, concept_b: str) -> bool:
        return self.component_of(concept_a) == self.component_of(concept_b)

    def node_concepts(self, node_key: str) -> frozenset[str]:
        """Ontology concepts whose instances a node's vertices may hold."""
        return frozenset(
            label for label in self.labels_of_node(node_key)
            if label in self.ontology.concepts
        )

    def resolve_concept(self, concept: str) -> tuple[str, ...]:
        """Vertex-schema labels whose vertices represent ``concept``."""
        return self._state.resolve(concept)

    def labels_of_node(self, node_key: str) -> frozenset[str]:
        try:
            return self.node_labels[node_key]
        except KeyError:
            raise SchemaError(f"unknown schema node {node_key!r}") from None

    def is_collapsed(self, rel_id: str) -> bool:
        return rel_id in self.collapsed

    def collapse_kind(self, rel_id: str) -> CollapseKind | None:
        return self.collapsed.get(rel_id)

    def find_replication(
        self, rel_id: str, source_concept: str, prop_name: str
    ) -> Replication | None:
        """The replication of ``source_concept.prop_name`` via ``rel_id``.

        Used by the rewriter: a pattern hop over ``rel_id`` reading
        ``prop_name`` on the far node can be replaced by the local list
        when such a replication exists.
        """
        for repl in self.replications:
            if (
                repl.rel_id == rel_id
                and repl.source_concept == source_concept
                and repl.source_property == prop_name
            ):
                return repl
        return None

    def replications_for_rel(self, rel_id: str) -> list[Replication]:
        return [r for r in self.replications if r.rel_id == rel_id]

    def collapsed_rel_ids(self, *kinds: CollapseKind) -> set[str]:
        wanted = set(kinds) if kinds else set(CollapseKind)
        return {
            rel_id
            for rel_id, kind in self.collapsed.items()
            if kind in wanted
        }

    def summary(self) -> str:
        by_kind: dict[CollapseKind, int] = {}
        for kind in self.collapsed.values():
            by_kind[kind] = by_kind.get(kind, 0) + 1
        parts = ", ".join(
            f"{n} {k.value}" for k, n in sorted(
                by_kind.items(), key=lambda item: item[0].value
            )
        )
        return (
            f"mapping: {len(self.collapsed)} collapsed rels ({parts or '-'})"
            f", {len(self.replications)} replicated properties"
        )
