"""Property graph schema model, mapping trace and DDL emitters."""

from repro.schema.ddl import to_cypher_ddl, to_gsql
from repro.schema.generate import (
    direct_schema,
    generate_schema,
    optimize_schema_nsc,
)
from repro.schema.mapping import CollapseKind, Replication, SchemaMapping
from repro.schema.model import (
    EdgeSchema,
    PropertyGraphSchema,
    PropertySchema,
    VertexSchema,
)

__all__ = [
    "CollapseKind",
    "EdgeSchema",
    "PropertyGraphSchema",
    "PropertySchema",
    "Replication",
    "SchemaMapping",
    "VertexSchema",
    "direct_schema",
    "generate_schema",
    "optimize_schema_nsc",
    "to_cypher_ddl",
    "to_gsql",
]
