"""Property graph schema model (the optimizer's output).

A :class:`PropertyGraphSchema` defines vertex types (with primary label,
extra labels inherited from collapsed concepts, and typed properties) and
edge types, mirroring what Cypher/GSQL/GraphQL-SDL schema DDL can express
(Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchemaError
from repro.ontology.model import DataType, RelationshipType


@dataclass(frozen=True)
class PropertySchema:
    """A typed property of a vertex schema."""

    name: str
    data_type: DataType
    is_list: bool = False

    @property
    def ddl_type(self) -> str:
        base = self.data_type.label
        return f"LIST<{base}>" if self.is_list else base

    @property
    def size_bytes(self) -> int:
        return self.data_type.size_bytes


@dataclass
class VertexSchema:
    """A vertex type: primary label, extra labels, properties."""

    label: str
    extra_labels: frozenset[str] = frozenset()
    properties: dict[str, PropertySchema] = field(default_factory=dict)

    @property
    def all_labels(self) -> frozenset[str]:
        return self.extra_labels | {self.label}

    def has_property(self, name: str) -> bool:
        return name in self.properties

    def property(self, name: str) -> PropertySchema:
        try:
            return self.properties[name]
        except KeyError:
            raise SchemaError(
                f"vertex schema {self.label!r} has no property {name!r}"
            ) from None


@dataclass(frozen=True)
class EdgeSchema:
    """An edge type between two vertex schemas."""

    src_label: str
    dst_label: str
    label: str
    rel_type: RelationshipType
    origin_rel: str


class PropertyGraphSchema:
    """A complete property graph schema."""

    def __init__(self, name: str = "pgs"):
        self.name = name
        self.vertex_schemas: dict[str, VertexSchema] = {}
        self.edge_schemas: list[EdgeSchema] = []

    def add_vertex_schema(self, vertex: VertexSchema) -> None:
        if vertex.label in self.vertex_schemas:
            raise SchemaError(f"duplicate vertex schema {vertex.label!r}")
        self.vertex_schemas[vertex.label] = vertex

    def add_edge_schema(self, edge: EdgeSchema) -> None:
        for label in (edge.src_label, edge.dst_label):
            if label not in self.vertex_schemas:
                raise SchemaError(
                    f"edge schema references unknown vertex {label!r}"
                )
        self.edge_schemas.append(edge)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def vertex(self, label: str) -> VertexSchema:
        try:
            return self.vertex_schemas[label]
        except KeyError:
            raise SchemaError(f"unknown vertex schema {label!r}") from None

    def vertices_with_label(self, label: str) -> list[VertexSchema]:
        """Vertex schemas carrying ``label`` (primary or extra)."""
        return [
            v for v in self.vertex_schemas.values()
            if label in v.all_labels
        ]

    def edges_with_label(self, label: str) -> list[EdgeSchema]:
        return [e for e in self.edge_schemas if e.label == label]

    def edges_of_origin(self, rel_id: str) -> list[EdgeSchema]:
        return [e for e in self.edge_schemas if e.origin_rel == rel_id]

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    @property
    def num_vertex_types(self) -> int:
        return len(self.vertex_schemas)

    @property
    def num_edge_types(self) -> int:
        return len(self.edge_schemas)

    @property
    def num_list_properties(self) -> int:
        return sum(
            1
            for v in self.vertex_schemas.values()
            for p in v.properties.values()
            if p.is_list
        )

    def summary(self) -> str:
        return (
            f"PGS {self.name!r}: {self.num_vertex_types} vertex types, "
            f"{self.num_edge_types} edge types, "
            f"{self.num_list_properties} list properties"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.summary()}>"
