"""Schema DDL emitters.

Two dialects are provided:

* :func:`to_cypher_ddl` - the compact Cypher-flavoured notation the paper
  uses in its figures (e.g. Figure 4(a))::

      Drug (name STRING, brand STRING),
      (Drug)-[cause]->(ContraIndication)

* :func:`to_gsql` - TigerGraph-style ``CREATE VERTEX`` / ``CREATE
  DIRECTED EDGE`` statements.
"""

from __future__ import annotations

from repro.schema.model import PropertyGraphSchema, PropertySchema


def _prop_name(prop: PropertySchema) -> str:
    """Quote replicated names such as ``Indication.desc`` with backticks."""
    return f"`{prop.name}`" if "." in prop.name else prop.name


def to_cypher_ddl(schema: PropertyGraphSchema) -> str:
    """Emit the paper's figure-style schema notation."""
    lines: list[str] = []
    for label in sorted(schema.vertex_schemas):
        vertex = schema.vertex_schemas[label]
        props = ", ".join(
            f"{_prop_name(p)} {p.ddl_type}"
            for p in sorted(vertex.properties.values(), key=lambda p: p.name)
        )
        lines.append(f"{label} ({props})")
    for edge in sorted(
        schema.edge_schemas,
        key=lambda e: (e.src_label, e.label, e.dst_label),
    ):
        lines.append(
            f"({edge.src_label})-[{edge.label}]->({edge.dst_label})"
        )
    return ",\n".join(lines)


def to_gsql(schema: PropertyGraphSchema) -> str:
    """Emit TigerGraph-style DDL."""
    type_map = {
        "BOOL": "BOOL",
        "INT": "INT",
        "FLOAT": "DOUBLE",
        "DATE": "DATETIME",
        "STRING": "STRING",
        "TEXT": "STRING",
    }
    lines: list[str] = []
    for label in sorted(schema.vertex_schemas):
        vertex = schema.vertex_schemas[label]
        cols = ["PRIMARY_ID id STRING"]
        for prop in sorted(vertex.properties.values(), key=lambda p: p.name):
            base = type_map[prop.data_type.label]
            gsql_type = f"LIST<{base}>" if prop.is_list else base
            cols.append(f'"{prop.name}" {gsql_type}')
        lines.append(
            f"CREATE VERTEX {label} ({', '.join(cols)})"
        )
    for i, edge in enumerate(
        sorted(
            schema.edge_schemas,
            key=lambda e: (e.src_label, e.label, e.dst_label),
        )
    ):
        lines.append(
            f"CREATE DIRECTED EDGE {edge.label}_{i} "
            f"(FROM {edge.src_label}, TO {edge.dst_label})"
        )
    return "\n".join(lines)
