"""Setup shim: the environment has no `wheel` package, so the modern
PEP 660 editable-install path is unavailable; this file enables the
legacy `pip install -e .` code path."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Ontology-driven property graph schema optimization for "
        "domain-specific knowledge graphs (ICDE 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
