#!/usr/bin/env python
"""Markdown link checker (stdlib only) for the docs CI job.

Scans markdown files for inline links/images (``[text](target)``) and
verifies that every *relative* target resolves to an existing file or
directory (anchors are stripped; external ``http(s)``/``mailto``
targets are skipped - CI must not depend on third-party uptime).
Bare intra-document anchors (``#section``) are checked against the
document's headings.

Usage::

    python tools/check_links.py [PATH ...]

Paths may be files or directories (directories are walked for
``*.md``).  With no arguments, checks the repo's documentation
surface: README.md, docs/, benchmarks/EXPERIMENTS.md, and
src/repro/graphdb/storage/README.md.  Exits non-zero when any link is
broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The default documentation surface (kept in sync with the CI job).
DEFAULT_TARGETS = [
    "README.md",
    "docs",
    "benchmarks/EXPERIMENTS.md",
    "src/repro/graphdb/storage/README.md",
]

#: Inline link or image: [text](target) / ![alt](target).  Targets
#: with spaces or nested parens are not used in this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks are excluded from scanning.
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (close enough for our docs)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def scan_file(path: Path) -> list[str]:
    """Return human-readable problems found in one markdown file."""
    problems: list[str] = []
    in_fence = False
    anchors: set[str] = set()
    links: list[tuple[int, str]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = HEADING_RE.match(line)
        if heading:
            anchors.add(github_anchor(heading.group(1)))
        for match in LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))

    for lineno, target in links:
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                problems.append(
                    f"{path}:{lineno}: broken anchor {target!r}"
                )
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(
                f"{path}:{lineno}: broken link {target!r} "
                f"(resolved to {resolved})"
            )
    return problems


def collect(paths: list[str]) -> tuple[list[Path], list[str]]:
    """(markdown files found, explicitly named paths that don't exist).

    A missing named path is an error, not a warning: the CI job must
    fail when a checked document is renamed away, not silently lose
    coverage.
    """
    files: list[Path] = []
    missing: list[str] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            missing.append(raw)
    return files, missing


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    files, missing = collect(args or DEFAULT_TARGETS)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    problems: list[str] = [
        f"missing checked path: {raw}" for raw in missing
    ]
    for path in files:
        problems.extend(scan_file(path))
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} file(s): "
        f"{'OK' if not problems else f'{len(problems)} broken link(s)'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
