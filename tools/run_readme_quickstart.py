#!/usr/bin/env python
"""Execute every ```python block of a markdown file (stdlib only).

The CI public-API smoke job installs the package (``pip install -e .``)
and runs this against README.md from a scratch directory, so the
documented driver quickstart cannot drift from the real entry points:
if `connect` / `Session.run` / `Transaction.commit` change shape, the
job fails.

Blocks run top-to-bottom in one shared namespace (like a doctest
session).  Exit codes: 0 all blocks ran, 1 a block raised, 2 usage /
no blocks found.

Usage::

    python tools/run_readme_quickstart.py README.md [--cwd DIR]
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

FENCE = re.compile(
    r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def python_blocks(markdown: str) -> list[str]:
    return [match.group(1) for match in FENCE.finditer(markdown)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("markdown", help="markdown file to execute")
    parser.add_argument(
        "--cwd", default=None,
        help="directory to run in (default: a fresh temp directory)",
    )
    args = parser.parse_args(argv)

    path = Path(args.markdown).resolve()
    blocks = python_blocks(path.read_text())
    if not blocks:
        print(f"no ```python blocks in {path}", file=sys.stderr)
        return 2

    import os

    workdir = args.cwd or tempfile.mkdtemp(prefix="readme-quickstart-")
    os.makedirs(workdir, exist_ok=True)
    os.chdir(workdir)
    namespace: dict = {"__name__": "__quickstart__"}
    for i, block in enumerate(blocks, 1):
        print(f"-- block {i}/{len(blocks)} ({len(block)} chars)")
        try:
            exec(compile(block, f"{path.name}#block{i}", "exec"),
                 namespace)
        except Exception as exc:  # noqa: BLE001 - report and fail
            print(
                f"block {i} of {path} raised "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return 1
    print(f"OK: {len(blocks)} block(s) executed in {workdir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
