"""Financial knowledge graph: space-budget and threshold exploration.

FIN is the paper's inheritance-dominant ontology (28 concepts, 96
properties, 138 relationships, 69 of them inheritance).  This example
shows how schema quality (the benefit ratio BR = B_SC / B_NSC) responds
to the space budget and to the Jaccard thresholds, and how the PGSG
facade picks between the relation-centric and concept-centric
algorithms.

Run with::

    python examples/financial_kg.py
"""

from repro.bench.reporting import ExperimentTable
from repro.datasets import build_fin
from repro.optimizer import CostBenefitModel, optimize
from repro.rules.base import Thresholds


def main() -> None:
    dataset = build_fin()
    print(dataset.ontology.summary())
    print()

    workload = dataset.workload("zipf")

    # --- Space sweep (Figure 9 style) ---------------------------------
    table = ExperimentTable(
        "FIN: benefit ratio vs space budget (Zipf workload)",
        ["space", "winner", "BR", "rule applications"],
    )
    model = CostBenefitModel(dataset.ontology, dataset.stats, workload)
    for fraction in (0.01, 0.05, 0.10, 0.25, 0.50, 1.00):
        budget = model.budget_for_fraction(fraction)
        best = optimize(
            dataset.ontology, dataset.stats, budget, workload
        )
        table.add_row(
            f"{fraction:.0%}", best.algorithm,
            round(best.benefit_ratio, 4), len(best.selected_items),
        )
    print(table.render())
    print()

    # --- Threshold sensitivity (Figure 10 style) ----------------------
    table = ExperimentTable(
        "FIN: benefit ratio vs Jaccard thresholds (50% budget)",
        ["(theta1, theta2)", "winner", "BR", "collapsed rels"],
    )
    for theta1, theta2 in ((0.9, 0.1), (0.66, 0.33), (0.6, 0.4),
                           (0.5, 0.5)):
        thresholds = Thresholds(theta1, theta2)
        model = CostBenefitModel(
            dataset.ontology, dataset.stats, workload, thresholds
        )
        budget = model.budget_for_fraction(0.5)
        best = optimize(
            dataset.ontology, dataset.stats, budget, workload, thresholds
        )
        table.add_row(
            f"({theta1}, {theta2})", best.algorithm,
            round(best.benefit_ratio, 4), len(best.mapping.collapsed),
        )
    print(table.render())


if __name__ == "__main__":
    main()
