"""Medical knowledge graph: end-to-end DIR vs OPT comparison.

Builds the MED dataset (43 concepts / 78 properties / 60 relationships,
matching the paper's published statistics), optimizes its schema under
the paper's microbenchmark parameters (theta1=0.66, theta2=0.33, budget
= half the NSC space overhead), loads both property graphs from the
same synthetic instances, automatically rewrites the benchmark queries,
and reports per-query simulated latency on both backend profiles.

Run with::

    python examples/medical_kg.py [scale]
"""

import sys

from repro.bench.harness import build_pipeline
from repro.bench.reporting import ExperimentTable, speedup
from repro.datasets import build_med
from repro.graphdb.backends import JANUSGRAPH_LIKE, NEO4J_LIKE
from repro.graphdb.query.ast import query_text
from repro.workload.runner import run_queries


def main(scale: float = 1.0) -> None:
    dataset = build_med()
    print(dataset.ontology.summary())

    pipeline = build_pipeline(dataset, scale=scale)
    print(pipeline.result.summary())
    print(pipeline.dir_graph.summary())
    print(pipeline.opt_graph.summary())
    print()

    print("Rewritten queries:")
    for qid in sorted(dataset.queries, key=lambda q: int(q[1:])):
        print(f"  {qid} DIR: {dataset.queries[qid]}")
        print(f"  {qid} OPT: {query_text(pipeline.rewritten[qid])}")
    print()

    table = ExperimentTable(
        "MED microbenchmark (ms, simulated)",
        ["query", "backend", "DIR", "OPT", "speedup"],
    )
    for qid in sorted(dataset.queries, key=lambda q: int(q[1:])):
        for profile in (JANUSGRAPH_LIKE, NEO4J_LIKE):
            dir_run = run_queries(
                pipeline.dir_graph, profile,
                [(qid, dataset.queries[qid])],
            ).runs[0]
            opt_run = run_queries(
                pipeline.opt_graph, profile,
                [(qid, pipeline.rewritten[qid])],
            ).runs[0]
            table.add_row(
                qid, profile.name,
                round(dir_run.latency_ms, 2),
                round(opt_run.latency_ms, 2),
                round(speedup(dir_run.latency_ms, opt_run.latency_ms), 2),
            )
    print(table.render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
