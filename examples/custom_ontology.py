"""Bring your own ontology: builder API, OWL-ish text, workload tuning.

Shows the full public workflow on a custom e-commerce ontology:

1. define an ontology with the fluent builder (or parse the OWL-ish
   functional syntax);
2. attach synthetic data statistics and an observed workload summary;
3. optimize under a byte budget and emit Cypher + GSQL DDL;
4. load a property graph and query it through the Cypher-subset engine.

Run with::

    python examples/custom_ontology.py
"""

from repro.data import generate_logical, load_direct, load_optimized
from repro.graphdb import Executor, GraphSession, NEO4J_LIKE
from repro.ontology import (
    OntologyBuilder,
    WorkloadSummary,
    synthesize_statistics,
)
from repro.ontology.io import load_owl_functional
from repro.optimizer import CostBenefitModel, optimize
from repro.schema import to_cypher_ddl, to_gsql
from repro.workload import QueryRewriter

OWL_TEXT = """
# The same ontology in the OWL-ish functional syntax
Class(Customer)
Class(Order)
Class(Invoice)
Class(Product)
Class(DigitalProduct)
Class(PhysicalProduct)
DataProperty(Customer name STRING)
DataProperty(Order orderId STRING)
DataProperty(Invoice total FLOAT)
DataProperty(Product title STRING)
ObjectProperty(places Customer Order 1:M)
ObjectProperty(billedAs Order Invoice 1:1)
ObjectProperty(contains Order Product M:N)
SubClassOf(DigitalProduct Product)
SubClassOf(PhysicalProduct Product)
"""


def build_shop_ontology():
    return (
        OntologyBuilder("shop")
        .concept("Customer", name="STRING", tier="STRING")
        .concept("Order", orderId="STRING", placedOn="DATE")
        .concept("Invoice", total="FLOAT", currency="STRING")
        .concept("Product", title="STRING", price="FLOAT")
        .concept("DigitalProduct", downloadUrl="STRING")
        .concept(
            "PhysicalProduct", weight="FLOAT", warehouse="STRING"
        )
        .one_to_many("places", "Customer", "Order")
        .one_to_one("billedAs", "Order", "Invoice")
        .many_to_many("contains", "Order", "Product")
        .inherits("Product", "DigitalProduct", "PhysicalProduct")
        .build()
    )


def main() -> None:
    ontology = build_shop_ontology()
    print(ontology.summary())

    # The OWL-ish loader produces the same structure.
    parsed = load_owl_functional(OWL_TEXT, name="shop-owl")
    print(f"(OWL-ish parse: {parsed.num_concepts} concepts, "
          f"{parsed.num_relationships} relationships)")
    print()

    stats = synthesize_statistics(ontology, base_cardinality=300, seed=1)
    workload = WorkloadSummary.from_counts(
        {"Customer": 500, "Order": 300, "Product": 150, "Invoice": 50}
    )
    model = CostBenefitModel(ontology, stats, workload)
    budget = model.budget_for_fraction(0.6)
    result = optimize(ontology, stats, budget, workload)
    print(result.summary())
    print()
    print("--- Cypher-style DDL " + "-" * 40)
    print(to_cypher_ddl(result.schema))
    print()
    print("--- TigerGraph GSQL " + "-" * 41)
    print(to_gsql(result.schema))
    print()

    # Load data into both schemas and compare a query.
    logical = generate_logical(ontology, stats, seed=1)
    dir_graph = load_direct(logical, name="shop-DIR")
    opt_graph = load_optimized(logical, result.mapping, name="shop-OPT")
    rewriter = QueryRewriter(ontology, result.mapping)

    query = (
        "MATCH (c:Customer)-[:places]->(o:Order)-[:billedAs]->"
        "(i:Invoice) RETURN c.tier, count(i.total) AS invoices "
        "ORDER BY invoices DESC"
    )
    rewritten = rewriter.rewrite(query)
    dir_result = Executor(GraphSession(dir_graph, NEO4J_LIKE)).run(query)
    opt_result = Executor(
        GraphSession(opt_graph, NEO4J_LIKE)
    ).run(rewritten)
    print(f"DIR: {dir_result.rows}  ({dir_result.latency_ms:.2f} ms, "
          f"{dir_result.metrics.edge_traversals} traversals)")
    print(f"OPT: {opt_result.rows}  ({opt_result.latency_ms:.2f} ms, "
          f"{opt_result.metrics.edge_traversals} traversals)")


if __name__ == "__main__":
    main()
