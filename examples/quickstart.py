"""Quickstart: optimize the paper's Figure 2 medical ontology.

Runs Algorithm 5 (no space constraint) on the Figure 2 ontology and
prints the optimized property graph schema, reproducing the paper's
Figures 4-7 transformations:

* the Risk union dissolves into ContraIndication / BlackBoxWarning;
* DrugInteraction merges down into its children (summary moves);
* Indication + Condition merge into IndicationCondition;
* Indication.desc is replicated onto Drug as a LIST property.

Run with::

    python examples/quickstart.py
"""

from repro.ontology.samples import figure2_medical_ontology
from repro.schema import optimize_schema_nsc, to_cypher_ddl, direct_schema


def main() -> None:
    ontology = figure2_medical_ontology()
    print(ontology.summary())
    print()

    direct, _ = direct_schema(ontology)
    print("=== Direct mapping (DIR baseline) " + "=" * 30)
    print(to_cypher_ddl(direct))
    print()

    optimized, mapping = optimize_schema_nsc(ontology)
    print("=== Optimized schema (Algorithm 5, no space limit) " + "=" * 13)
    print(to_cypher_ddl(optimized))
    print()
    print(mapping.summary())
    print()
    print("Collapsed relationships:")
    for rel_id, kind in sorted(mapping.collapsed.items()):
        rel = ontology.relationship(rel_id)
        print(f"  {rel.src} -[{rel.label}]-> {rel.dst}: {kind.value}")
    print()
    print("Replicated list properties:")
    for repl in mapping.replications:
        print(
            f"  {repl.owner_node}.`{repl.list_name}` "
            f"<- {repl.source_concept}.{repl.source_property}"
        )


if __name__ == "__main__":
    main()
